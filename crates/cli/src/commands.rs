//! CLI subcommand implementations. Each command returns its output as a
//! `String` so the dispatch layer stays testable.

use crate::args::{ArgError, Args};
use albireo_core::ablation::{sweep_nd, sweep_ng, sweep_nu};
use albireo_core::area::AreaBreakdown;
use albireo_core::config::{ChipConfig, TechnologyEstimate};
use albireo_core::energy::NetworkEvaluation;
use albireo_core::power::PowerBreakdown;
use albireo_core::report::{format_joules, format_seconds, format_table, format_watts};
use albireo_core::trace::{summarize, trace_kernel};
use albireo_nn::{zoo, Model};
use albireo_parallel::Parallelism;
use albireo_photonics::mrr::Microring;
use albireo_photonics::precision::PrecisionModel;
use albireo_photonics::OpticalParams;
use std::error::Error;
use std::fmt;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments.
    Args(ArgError),
    /// Unknown subcommand or entity name.
    Unknown(String),
    /// An output file could not be written.
    Io(String),
    /// A quality gate tripped (`perf-diff` found a regression). The
    /// command itself ran fine; the comparison failed. Exit 3 keeps the
    /// verdict distinguishable from I/O (1) and usage (2) failures in
    /// CI scripts.
    Gate(String),
}

impl CliError {
    /// Process exit code: usage-class errors exit 2 (and print a usage
    /// hint), runtime I/O failures exit 1, tripped gates exit 3.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Args(_) | CliError::Unknown(_) => 2,
            CliError::Io(_) => 1,
            CliError::Gate(_) => 3,
        }
    }

    /// Whether the error should be followed by the usage hint.
    pub fn is_usage(&self) -> bool {
        matches!(self, CliError::Args(_) | CliError::Unknown(_))
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Unknown(msg) => write!(f, "{msg}"),
            CliError::Io(msg) => write!(f, "{msg}"),
            CliError::Gate(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> CliError {
        CliError::Args(e)
    }
}

/// The top-level usage text.
pub const USAGE: &str = "\
albireo — silicon-photonic CNN accelerator simulator (ISCA 2021 reproduction)

USAGE:
    albireo <command> [options]

COMMANDS:
    networks                          list the serving model zoo
    evaluate <network>                run a network on the chip model
        --estimate C|M|A  --ng N  [--no-stride-penalty]  [--per-layer N]
        [--trace-out FILE]            per-layer Chrome/Perfetto trace
                                      (plus a depth-first vs weight-stationary
                                      dataflow diagnostic table)
    power      [--ng N] [--estimate C|M|A]    Table III power breakdown
    area       [--ng N]                       Fig. 9 area breakdown
    precision  [--k2 X] [--wavelengths N] [--laser-mw P]   Figs. 3/4 analysis
    trace      [--rows R] [--cols C] [--channels Z]        Fig. 7 dataflow
    sweep      --param ng|nd|nu --values A,B,C [--network NAME] [--json]
    compare    [--network NAME]               baselines + winograd/gemm modes
    faults     [--dead-ring R,C,O] [--dead-channel C] [--stuck-mzm R,C,W]
    experiment <name>|all                     regenerate a paper experiment
    bench      [--thread-counts A,B,C] [--target-ms N] [--out FILE]
                                              parallel-scaling benchmark (JSON)
    serve      [--requests N] [--seed S] [--rate RPS]
        [--arrival poisson|bursty|diurnal|flash] [--trace-jsonl FILE]
        [--amplitude A] [--period S] [--spike X] [--spike-at T] [--spike-decay S]
        [--classes NAME:WEIGHT[:SLO_MS],...] [--slo MS] [--record-cap N]
        [--fleet SPEC] [--policy immediate|size:N|deadline:USEC[:MAX]]
        [--queue-cap N] [--networks A,B] [--replicas R] [--json] [--out FILE]
        [--fail CHIP@T,...] [--degrade CHIP:K@T,...] [--recover CHIP@T,...]
        [--faults SPEC]                   correlated scenario: fail:C@T, recover:C@T,
                                          degrade:C@T:N, rack:A-B@T,
                                          thermal:A-B@T1-T2:N, crews:K:MEAN_S:SEED
        [--checkpoint-every SIM_S] [--checkpoint-out FILE] [--resume FILE]
        [--halt-after-checkpoints N] [--report-jsonl FILE]
        [--trace-out FILE] [--events-out FILE] [--metrics-out FILE]
        [--slo-target FRACTION]           burn-rate alert objective (default 0.999)
                                              multi-chip serving simulation
    plan       --slo \"p99<MS[,attain>=A][,shed<=S]\" [--rate RPS]
        [--chips ENTRY,...] [--max-chips N] [--networks A,B]
        [--arrival poisson|bursty|diurnal|flash] [--burst X] [--amplitude A]
        [--period S] [--spike X] [--spike-at T] [--spike-decay S]
        [--classes NAME:WEIGHT[:SLO_MS],...] [--requests N]
        [--screen-requests N] [--seed S] [--replicas R]
        [--policies immediate|size:N|deadline:USEC[:MAX],...]
        [--queue-cap N] [--autoscale none|static|elastic:UP:WARM[:MIN],...]
        [--faults SPEC]                   score candidates under a fault scenario
        [--spec LINE] [--exhaustive] [--json] [--out FILE] [--csv-out FILE]
                                              capacity planner / fleet optimizer
    perf-diff <old.json> <new.json> [--threshold PCT]
                                              perf-regression gate: compares
                                              BENCH_*.json or profile reports;
                                              exit 3 on regression (default 10%)
    help                                      show this message

GLOBAL OPTIONS:
    --threads N    worker threads for parallel regions (0 = one per core)
    --wall-clock   stamp trace events with wall-clock ns (diagnostic only;
                   excluded from digests, traces stay seed-deterministic)
    --profile FILE write an albireo.profile/v1 wall-clock phase report for
                   the command (host-clock timings; never touches digests)

TRACING:
    --trace-out FILE writes a Chrome trace_event JSON of the run on the
    virtual clock — open it at https://ui.perfetto.dev or chrome://tracing.
    --events-out FILE writes the same stream as JSONL. Fixed seed ⇒
    byte-identical files at any --threads value.

FLEET CHIP KINDS (serve --fleet, plan --chips):
    albireo_9, albireo_27      direct Albireo dataflow
    winograd[_9|_27]           F(2x2,3x3) transform-domain convolution
                               (stride-1 3x3 layers; direct fallback else)
    gemm[_9|_27]               incoherent weight-stationary GEMM; serves
                               dense/pointwise networks only
    pixel, deap, ngN           photonic baselines / custom PLCG count
    eyeriss, envision, unpu    reported numbers (no estimate tag)
    Entries are `[alias=]kind[:C|M|A]`, joined with commas.

CHECKPOINTING (serve):
    --checkpoint-every S snapshots the simulation every S simulated
    seconds to --checkpoint-out FILE (overwritten each time) and/or
    appends one progress line per checkpoint to --report-jsonl FILE.
    --halt-after-checkpoints N stops cleanly after the Nth snapshot;
    --resume FILE restarts from a snapshot and produces a report
    byte-identical to the uninterrupted run (digests match).

METRICS & ALERTS (serve):
    --metrics-out FILE writes an OpenMetrics text export: one snapshot
    for a plain run, a per-checkpoint time series with --checkpoint-every.
    SLO classes (--classes name:w:slo_ms or --slo) are watched by
    deterministic multi-window burn-rate rules (fast 5m/1h, slow 6h/3d
    on the virtual clock) against the --slo-target objective; alert
    fire/resolve transitions stream to --report-jsonl as
    albireo.serve.alert/v1 lines and summarize in the serve report.
";

fn parse_network(name: &str) -> Result<Model, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "alexnet" => Ok(zoo::alexnet()),
        "vgg16" | "vgg" => Ok(zoo::vgg16()),
        "resnet18" | "resnet" => Ok(zoo::resnet18()),
        "mobilenet" => Ok(zoo::mobilenet()),
        "vgg19" => Ok(zoo::vgg19()),
        "resnet34" => Ok(zoo::resnet34()),
        "mobilenet-0.5" | "mobilenet_half" => Ok(zoo::mobilenet_half()),
        "mlp-mixer" | "mlp_mixer" | "mixer" => Ok(zoo::mlp_mixer()),
        "transformer" | "transformer-enc" | "transformer_encoder_block" => {
            Ok(zoo::transformer_encoder_block())
        }
        "tiny" => Ok(zoo::tiny()),
        other => Err(CliError::Unknown(format!(
            "unknown network `{other}` (try: alexnet, vgg16, resnet18, mobilenet, \
             vgg19, resnet34, mobilenet-0.5, mlp-mixer, transformer, tiny)"
        ))),
    }
}

fn parse_estimate(name: &str) -> Result<TechnologyEstimate, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "c" | "conservative" => Ok(TechnologyEstimate::Conservative),
        "m" | "moderate" => Ok(TechnologyEstimate::Moderate),
        "a" | "aggressive" => Ok(TechnologyEstimate::Aggressive),
        other => Err(CliError::Unknown(format!(
            "unknown estimate `{other}` (try: conservative, moderate, aggressive)"
        ))),
    }
}

/// An `Obs` handle for a command run: enabled only when a trace export
/// or an OpenMetrics export was requested, with wall-clock stamping
/// behind `--wall-clock`.
fn trace_obs(args: &Args) -> albireo_obs::Obs {
    let enabled = args.get("trace-out").is_some()
        || args.get("events-out").is_some()
        || args.get("metrics-out").is_some();
    let obs = albireo_obs::Obs::new(enabled);
    if args.flag("wall-clock") {
        obs.set_wall_clock(true);
    }
    obs
}

/// Writes the `--metrics-out` OpenMetrics text export from an enabled
/// `Obs`, returning a note line (empty when the flag is absent).
fn write_metrics_out(args: &Args, obs: &albireo_obs::Obs) -> Result<String, CliError> {
    let Some(path) = args.get("metrics-out") else {
        return Ok(String::new());
    };
    let snapshot = obs.snapshot();
    std::fs::write(path, albireo_obs::openmetrics::render(&snapshot))
        .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
    Ok(format!(
        "wrote {path}: OpenMetrics snapshot, digest {:016x}\n",
        snapshot.digest()
    ))
}

/// Drains `obs` and writes the requested trace exports (`--trace-out`
/// Chrome JSON, `--events-out` JSONL), returning one note line per file
/// written (empty when no export was requested).
fn write_trace_outputs(
    args: &Args,
    obs: &albireo_obs::Obs,
    track_names: &[(u32, String)],
) -> Result<String, CliError> {
    let mut note = String::new();
    if args.get("trace-out").is_none() && args.get("events-out").is_none() {
        return Ok(note);
    }
    let events = obs.drain_events();
    let digest = albireo_obs::events_digest(&events);
    if let Some(path) = args.get("trace-out") {
        let trace = albireo_obs::to_chrome_trace(&events, track_names);
        std::fs::write(path, trace)
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        note.push_str(&format!(
            "wrote {path}: {} trace events, digest {digest:016x}\n",
            events.len()
        ));
    }
    if let Some(path) = args.get("events-out") {
        let jsonl = albireo_obs::to_jsonl(&events);
        std::fs::write(path, jsonl)
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        note.push_str(&format!(
            "wrote {path}: {} events (JSONL), digest {digest:016x}\n",
            events.len()
        ));
    }
    Ok(note)
}

fn chip_from(args: &Args) -> Result<ChipConfig, CliError> {
    let ng = args.get_parsed_or("ng", 9usize, "a positive integer")?;
    if ng == 0 {
        return Err(CliError::Unknown("--ng must be at least 1".into()));
    }
    let mut chip = ChipConfig::with_ng(ng);
    if args.flag("no-stride-penalty") {
        chip.model_stride_penalty = false;
    }
    Ok(chip)
}

/// `albireo networks`
pub fn networks() -> String {
    let rows: Vec<Vec<String>> = zoo::serving_models()
        .iter()
        .map(|m| {
            vec![
                m.name().to_string(),
                m.layers().len().to_string(),
                format!("{:.2}", m.total_macs() as f64 / 1e9),
                format!("{:.1}", m.total_params() as f64 / 1e6),
                m.input_shape().to_string(),
            ]
        })
        .collect();
    format_table(&["network", "layers", "GMACs", "Mparams", "input"], &rows)
}

/// `albireo evaluate <network> [...]`
pub fn evaluate(args: &Args) -> Result<String, CliError> {
    let name = args
        .positionals()
        .first()
        .ok_or_else(|| CliError::Unknown("evaluate needs a network name".into()))?;
    let model = parse_network(name)?;
    let estimate = parse_estimate(args.get_or("estimate", "conservative"))?;
    let chip = chip_from(args)?;
    let obs = trace_obs(args);
    let eval =
        NetworkEvaluation::evaluate_observed(&chip, estimate, &model, Parallelism::default(), &obs);
    let mut out = format!(
        "{} on Albireo-{} (Ng={}):\n  latency {}  energy {}  EDP {:.3} mJ·ms\n  power {}  {:.0} GOPS  {:.1} GOPS/mm² ({:.0} active)  utilization {:.1}%\n",
        eval.network,
        estimate.suffix(),
        chip.ng,
        format_seconds(eval.latency_s),
        format_joules(eval.energy_j),
        eval.edp_mj_ms(),
        format_watts(eval.power_w),
        eval.gops(),
        eval.gops_per_mm2(),
        eval.gops_per_mm2_active(),
        eval.mean_utilization() * 100.0,
    );
    let show = args.get_parsed_or("per-layer", 0usize, "a count")?;
    if show > 0 {
        let mut layers: Vec<_> = eval.per_layer.iter().filter(|l| l.cycles > 0).collect();
        layers.sort_by_key(|l| std::cmp::Reverse(l.cycles));
        let rows: Vec<Vec<String>> = layers
            .iter()
            .take(show)
            .map(|l| {
                vec![
                    l.name.clone(),
                    l.cycles.to_string(),
                    format_seconds(l.latency_s),
                    format!("{:.1}%", l.utilization * 100.0),
                ]
            })
            .collect();
        out.push_str(&format_table(
            &["layer", "cycles", "latency", "utilization"],
            &rows,
        ));
    }
    // Dataflow diagnostic: the depth-first schedule the paper argues for
    // vs a weight-stationary alternative, in converter updates and
    // partial-sum traffic (see core::dataflow_alt).
    let (df, ws) = albireo_core::dataflow_alt::compare_dataflows(&chip, estimate, &model);
    let dataflow_rows = vec![
        vec![
            "depth-first".to_string(),
            df.weight_dac_updates.to_string(),
            df.input_dac_updates.to_string(),
            df.partial_bytes.to_string(),
            format_joules(df.energy_j),
        ],
        vec![
            "weight-stationary".to_string(),
            ws.weight_dac_updates.to_string(),
            ws.input_dac_updates.to_string(),
            ws.partial_bytes.to_string(),
            format_joules(ws.energy_j),
        ],
    ];
    out.push_str("\nDataflow comparison (converter + partial-sum traffic):\n");
    out.push_str(&format_table(
        &[
            "dataflow",
            "weight DAC updates",
            "input DAC updates",
            "partial bytes",
            "energy",
        ],
        &dataflow_rows,
    ));
    out.push_str(&format!(
        "  weight-stationary energy delta: {:+.1}% vs depth-first\n",
        (ws.energy_j - df.energy_j) / df.energy_j * 100.0
    ));
    out.push_str(&write_trace_outputs(
        args,
        &obs,
        &[(albireo_obs::track::ENGINE, "engine".to_string())],
    )?);
    out.push_str(&write_metrics_out(args, &obs)?);
    Ok(out)
}

/// `albireo power [...]`
pub fn power(args: &Args) -> Result<String, CliError> {
    let chip = chip_from(args)?;
    let estimate = parse_estimate(args.get_or("estimate", "conservative"))?;
    let b = PowerBreakdown::for_chip(&chip, estimate);
    let rows: Vec<Vec<String>> = b
        .rows()
        .into_iter()
        .map(|(name, w, portion)| {
            vec![
                name.to_string(),
                format_watts(w),
                format!("{:.1}%", portion * 100.0),
            ]
        })
        .collect();
    Ok(format!(
        "{}\nTotal: {}\n",
        format_table(&["device", "power", "portion"], &rows),
        format_watts(b.total_w())
    ))
}

/// `albireo area [...]`
pub fn area(args: &Args) -> Result<String, CliError> {
    let chip = chip_from(args)?;
    let a = AreaBreakdown::for_chip(&chip);
    let rows: Vec<Vec<String>> = a
        .rows()
        .into_iter()
        .map(|(name, mm2, portion)| {
            vec![
                name.to_string(),
                format!("{mm2:.3} mm²"),
                format!("{:.1}%", portion * 100.0),
            ]
        })
        .collect();
    Ok(format!(
        "{}\nTotal: {:.1} mm² (active {:.1} mm²)\n",
        format_table(&["component", "area", "portion"], &rows),
        a.total_mm2(),
        a.active_mm2()
    ))
}

/// `albireo precision [...]`
pub fn precision(args: &Args) -> Result<String, CliError> {
    let k2 = args.get_parsed_or("k2", 0.03f64, "a coupling coefficient in (0,1)")?;
    if !(0.0..1.0).contains(&k2) || k2 == 0.0 {
        return Err(CliError::Unknown(format!(
            "--k2 must be in (0,1), got {k2}"
        )));
    }
    let n = args.get_parsed_or("wavelengths", 21usize, "a wavelength count")?;
    if n == 0 {
        return Err(CliError::Unknown("--wavelengths must be at least 1".into()));
    }
    let laser_mw = args.get_parsed_or("laser-mw", 2.0f64, "a power in mW")?;
    let params = OpticalParams::paper();
    let ring = Microring::with_k2(&params, k2);
    let model = PrecisionModel::paper();
    let noise_bits = model.noise_limited_bits(n, laser_mw * 1e-3);
    let xtalk = model.crosstalk_limited_levels(&ring, n);
    let combined = model.combined_levels(&ring, n, laser_mw * 1e-3);
    Ok(format!(
        "ring: k²={k2}, FSR {:.2} nm, FWHM {:.3} nm, finesse {:.0}, bandwidth {:.1} GHz\n\
         at {n} wavelengths, {laser_mw} mW/channel at the PD:\n\
           noise-limited:     {:.2} bits\n\
           crosstalk-limited: {:.2} bits ({:.2} with negative rail)\n\
           combined:          {:.2} bits ({:.2} with negative rail)\n",
        ring.fsr() * 1e9,
        ring.fwhm() * 1e9,
        ring.finesse(),
        ring.bandwidth_hz() / 1e9,
        noise_bits,
        xtalk.log2(),
        PrecisionModel::with_negative_rail(xtalk).log2(),
        combined.log2(),
        PrecisionModel::with_negative_rail(combined).log2(),
    ))
}

/// `albireo trace [...]`
pub fn trace(args: &Args) -> Result<String, CliError> {
    let rows = args.get_parsed_or("rows", 1usize, "a row count")?;
    let cols = args.get_parsed_or("cols", 12usize, "a column count")?;
    let channels = args.get_parsed_or("channels", 9usize, "a channel count")?;
    if rows == 0 || cols == 0 || channels == 0 {
        return Err(CliError::Unknown(
            "trace dimensions must be positive".into(),
        ));
    }
    let chip = chip_from(args)?;
    let cycles = trace_kernel(&chip, 0, rows, cols, channels);
    let mut out = String::new();
    for c in cycles.iter().take(24) {
        out.push_str(&format!("{c}\n"));
    }
    if cycles.len() > 24 {
        out.push_str(&format!("... ({} more cycles)\n", cycles.len() - 24));
    }
    let s = summarize(&cycles);
    out.push_str(&format!(
        "{} cycles, {} outputs, {} partial updates, {} writebacks\n",
        s.cycles, s.outputs_written, s.partial_updates, s.writebacks
    ));
    Ok(out)
}

/// `albireo sweep --param ... --values ...`
pub fn sweep(args: &Args) -> Result<String, CliError> {
    let param = args
        .get("param")
        .ok_or(ArgError::MissingOption("param".into()))?;
    let values: Vec<usize> = args
        .get_list("values", "comma-separated integers")?
        .ok_or(ArgError::MissingOption("values".into()))?;
    let network = parse_network(args.get_or("network", "vgg16"))?;
    let estimate = parse_estimate(args.get_or("estimate", "conservative"))?;
    let points = match param {
        "ng" => sweep_ng(&values, estimate, &network),
        "nd" => sweep_nd(&values, estimate, &network),
        "nu" => sweep_nu(&values, estimate, &network),
        other => {
            return Err(CliError::Unknown(format!(
                "unknown sweep parameter `{other}` (try: ng, nd, nu)"
            )))
        }
    };
    if args.flag("json") {
        let mut out = String::from("[\n");
        for (i, p) in points.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"design\": \"{}\", \"power_w\": {:.6}, \"area_mm2\": {:.6}, \
                 \"latency_s\": {:.9}, \"edp_mj_ms\": {:.6}, \"precision_bits\": {:.6}}}{}\n",
                p.label,
                p.power_w,
                p.area_mm2,
                p.latency_s,
                p.edp_mj_ms,
                p.precision_bits,
                if i + 1 < points.len() { "," } else { "" }
            ));
        }
        out.push_str("]\n");
        return Ok(out);
    }
    let rows: Vec<Vec<String>> = points
        .into_iter()
        .map(|p| {
            vec![
                p.label,
                format!("{:.2}", p.power_w),
                format!("{:.0}", p.area_mm2),
                format_seconds(p.latency_s),
                format!("{:.2}", p.edp_mj_ms),
                format!("{:.2}", p.precision_bits),
            ]
        })
        .collect();
    Ok(format_table(
        &[
            "design",
            "power (W)",
            "area (mm²)",
            "latency",
            "EDP (mJ·ms)",
            "bits",
        ],
        &rows,
    ))
}

/// `albireo bench [--thread-counts A,B,C] [--target-ms N] [--out FILE]` —
/// the parallel-scaling benchmark; emits the `BENCH_parallel.json` schema.
pub fn bench(args: &Args) -> Result<String, CliError> {
    use albireo_bench::sweep::{run_parallel_sweep, SweepOptions};
    let mut options = SweepOptions::default();
    if let Some(counts) = args.get_list::<usize>("thread-counts", "comma-separated integers")? {
        if counts.is_empty() {
            return Err(CliError::Unknown(
                "--thread-counts must not be empty".into(),
            ));
        }
        options.thread_counts = counts;
    }
    options.target_ms = args.get_parsed_or("target-ms", options.target_ms, "a duration in ms")?;
    let report = run_parallel_sweep(&options);
    let json = report.to_json();
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &json)
                .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
            Ok(format!(
                "wrote {path}: best whole-sweep speedup {:.2}x, deterministic: {}\n",
                report.best_total_speedup(),
                report.all_deterministic()
            ))
        }
        None => Ok(json),
    }
}

/// Splits a fault-scenario token on `@`, returning the head and the time.
fn parse_at(entry: &str, what: &str) -> Result<(String, f64), CliError> {
    let (head, at) = entry
        .split_once('@')
        .ok_or_else(|| CliError::Unknown(format!("{what} entry `{entry}` needs `@<time_s>`")))?;
    let at_s: f64 = at
        .trim()
        .parse()
        .map_err(|_| CliError::Unknown(format!("bad time in {what} entry `{entry}`")))?;
    if !(at_s.is_finite() && at_s >= 0.0) {
        return Err(CliError::Unknown(format!(
            "{what} time must be finite and non-negative in `{entry}`"
        )));
    }
    Ok((head.trim().to_string(), at_s))
}

/// `albireo serve [...]` — run the multi-chip serving simulation.
/// Parses the shared arrival-process flags — `--arrival` plus its
/// shape parameters (`--burst`, `--amplitude`/`--period`,
/// `--spike*`) or `--trace-jsonl` — used by both `serve` and `plan`.
fn parse_arrival(args: &Args, rate: f64) -> Result<albireo_runtime::ArrivalProcess, CliError> {
    use albireo_runtime::ArrivalProcess;

    if let Some(path) = args.get("trace-jsonl") {
        if !std::path::Path::new(path).is_file() {
            return Err(CliError::Unknown(format!(
                "--trace-jsonl file `{path}` does not exist"
            )));
        }
        return Ok(ArrivalProcess::TraceFile { path: path.into() });
    }
    match args.get_or("arrival", "poisson") {
        "poisson" => Ok(ArrivalProcess::Poisson { rate_rps: rate }),
        "bursty" => {
            let burst = args.get_parsed_or("burst", 4.0f64, "a burst multiplier > 1")?;
            if burst <= 1.0 || !burst.is_finite() {
                return Err(CliError::Unknown("--burst must exceed 1".into()));
            }
            Ok(ArrivalProcess::Bursty {
                rate_rps: rate,
                burst,
                on_s: 0.01,
                off_s: 0.04,
            })
        }
        "diurnal" => {
            let amplitude = args.get_parsed_or("amplitude", 0.5f64, "an amplitude in [0, 1]")?;
            if !(0.0..=1.0).contains(&amplitude) {
                return Err(CliError::Unknown("--amplitude must lie in [0, 1]".into()));
            }
            let period_s = args.get_parsed_or("period", 1.0f64, "a period in seconds")?;
            if !(period_s.is_finite() && period_s > 0.0) {
                return Err(CliError::Unknown("--period must be positive".into()));
            }
            Ok(ArrivalProcess::Diurnal {
                rate_rps: rate,
                amplitude,
                period_s,
            })
        }
        "flash" => {
            let spike = args.get_parsed_or("spike", 8.0f64, "a spike multiplier > 1")?;
            if spike <= 1.0 || !spike.is_finite() {
                return Err(CliError::Unknown("--spike must exceed 1".into()));
            }
            let at_s = args.get_parsed_or("spike-at", 0.05f64, "an onset time in seconds")?;
            if !(at_s.is_finite() && at_s >= 0.0) {
                return Err(CliError::Unknown("--spike-at must be non-negative".into()));
            }
            let decay_s =
                args.get_parsed_or("spike-decay", 0.1f64, "a decay constant in seconds")?;
            if !(decay_s.is_finite() && decay_s > 0.0) {
                return Err(CliError::Unknown("--spike-decay must be positive".into()));
            }
            Ok(ArrivalProcess::FlashCrowd {
                rate_rps: rate,
                spike,
                at_s,
                decay_s,
            })
        }
        other => Err(CliError::Unknown(format!(
            "unknown arrival process `{other}` (try: poisson, bursty, diurnal, flash)"
        ))),
    }
}

pub fn serve(args: &Args) -> Result<String, CliError> {
    use albireo_runtime::{
        replicate, resume_checkpointed, simulate_checkpointed, simulate_observed,
        trace_track_names, AdmissionControl, AutoscalePolicy, BatchPolicy, ClassSpec, FaultKind,
        FaultScenario, FaultSpec, FleetConfig, ServeConfig, ServeOutcome, SimSnapshot, Workload,
    };

    let requests = args.get_parsed_or("requests", 1000usize, "a request count")?;
    if requests == 0 {
        return Err(CliError::Unknown("--requests must be at least 1".into()));
    }
    let seed = args.get_parsed_or("seed", 42u64, "a seed")?;
    let rate = args.get_parsed_or("rate", 2000.0f64, "a rate in requests/s")?;
    if !(rate.is_finite() && rate > 0.0) {
        return Err(CliError::Unknown("--rate must be positive".into()));
    }
    let replicas = args.get_parsed_or("replicas", 1usize, "a replica count")?;
    if replicas == 0 {
        return Err(CliError::Unknown("--replicas must be at least 1".into()));
    }

    // The serving model table: the paper's four benchmarks at indices
    // 0–3 (so existing mixes, goldens, and digests are unchanged) plus
    // the dense extension workloads the winograd/gemm chips open up.
    let models = zoo::serving_models();
    let fleet = FleetConfig::parse(args.get_or("fleet", "albireo_9:C,albireo_27:C"), models)
        .map_err(CliError::Unknown)?;
    let policy =
        BatchPolicy::parse(args.get_or("policy", "immediate")).map_err(CliError::Unknown)?;
    let queue_cap = args.get_parsed_or("queue-cap", 64usize, "a capacity (0 = unbounded)")?;
    let admission = if queue_cap == 0 {
        AdmissionControl::unbounded()
    } else {
        AdmissionControl::bounded(queue_cap)
    };

    // Equal-weight network mix by name, resolved against the fleet's
    // model table.
    let mut mix = Vec::new();
    for name in args.get_or("networks", "alexnet").split(',') {
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        let idx = fleet
            .models
            .iter()
            .position(|m| m.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| {
                CliError::Unknown(format!(
                    "unknown network `{name}` (serving fleet offers: {})",
                    fleet
                        .models
                        .iter()
                        .map(|m| m.name())
                        .collect::<Vec<&str>>()
                        .join(", ")
                ))
            })?;
        if !fleet.supports(&fleet.models[idx]) {
            return Err(CliError::Unknown(format!(
                "no chip in fleet `{}` supports network `{name}` \
                 (reported-number chips only serve their published benchmarks; \
                 gemm chips only serve dense/pointwise networks)",
                fleet.label()
            )));
        }
        mix.push((idx, 1.0));
    }
    if mix.is_empty() {
        return Err(CliError::Unknown("--networks names no network".into()));
    }

    let process = parse_arrival(args, rate)?;

    // Multi-tenant request classes: `--classes name:weight[:slo_ms],...`
    // plus `--slo MS` as the default target (alone it wraps all traffic
    // in one `default` class).
    let default_slo = match args.get("slo") {
        Some(v) => {
            let slo: f64 = v
                .parse()
                .map_err(|_| CliError::Unknown("--slo needs a latency in ms".into()))?;
            if !(slo.is_finite() && slo > 0.0) {
                return Err(CliError::Unknown("--slo must be positive".into()));
            }
            Some(slo)
        }
        None => None,
    };
    let classes = match args.get("classes") {
        Some(list) => ClassSpec::parse_list(list, default_slo)
            .map_err(|e| CliError::Unknown(format!("--classes: {e}")))?,
        None => match default_slo {
            Some(slo) => vec![ClassSpec::with_slo("default", 1.0, slo)],
            None => Vec::new(),
        },
    };

    let autoscale =
        AutoscalePolicy::parse(args.get_or("autoscale", "none")).map_err(CliError::Unknown)?;

    let record_cap = args.get_parsed_or(
        "record-cap",
        0usize,
        "a per-request record cap (0 = none retained)",
    )?;

    let chip_index = |tok: &str, entry: &str| -> Result<usize, CliError> {
        let idx: usize = tok
            .parse()
            .map_err(|_| CliError::Unknown(format!("bad chip index in `{entry}`")))?;
        if idx >= fleet.chips.len() {
            return Err(CliError::Unknown(format!(
                "chip index {idx} outside the {}-chip fleet",
                fleet.chips.len()
            )));
        }
        Ok(idx)
    };
    let mut faults = FaultScenario::none();
    if let Some(list) = args.get("fail") {
        for entry in list.split(',').filter(|e| !e.trim().is_empty()) {
            let (chip, at_s) = parse_at(entry, "--fail")?;
            let chip = chip_index(&chip, entry)?;
            faults = faults.with(at_s, FaultKind::ChipOffline { chip });
        }
    }
    if let Some(list) = args.get("recover") {
        for entry in list.split(',').filter(|e| !e.trim().is_empty()) {
            let (chip, at_s) = parse_at(entry, "--recover")?;
            let chip = chip_index(&chip, entry)?;
            faults = faults.with(at_s, FaultKind::ChipOnline { chip });
        }
    }
    if let Some(list) = args.get("degrade") {
        for entry in list.split(',').filter(|e| !e.trim().is_empty()) {
            let (head, at_s) = parse_at(entry, "--degrade")?;
            let (chip, count) = head.split_once(':').ok_or_else(|| {
                CliError::Unknown(format!("--degrade entry `{entry}` needs CHIP:K@T"))
            })?;
            let chip = chip_index(chip.trim(), entry)?;
            let count: usize = count
                .trim()
                .parse()
                .map_err(|_| CliError::Unknown(format!("bad PLCG count in `{entry}`")))?;
            if count == 0 {
                return Err(CliError::Unknown(
                    "--degrade must retire at least one PLCG".into(),
                ));
            }
            faults = faults.with(at_s, FaultKind::PlcgOffline { chip, count });
        }
    }
    // `--faults` takes the full correlated-scenario grammar (rack
    // groups, thermal epochs, repair crews) and merges with the legacy
    // per-chip flags above.
    if let Some(spec) = args.get("faults") {
        let parsed = FaultSpec::parse(spec).map_err(CliError::Unknown)?;
        faults = faults.merged(parsed.compile(fleet.chips.len()));
    }

    // Burn-rate alerting objective: `--slo-target 0.999` (the default)
    // sets the per-class SLO objective the in-sim alert rules burn
    // against; inert unless the workload defines SLO classes.
    let alert = match args.get("slo-target") {
        Some(raw) => {
            let target: f64 = raw
                .parse()
                .map_err(|_| CliError::Unknown("--slo-target needs a fraction".into()))?;
            if !(target.is_finite() && (0.0..1.0).contains(&target)) {
                return Err(CliError::Unknown(
                    "--slo-target must be in [0, 1), e.g. 0.999".into(),
                ));
            }
            albireo_runtime::AlertPolicy::with_target(target)
        }
        None => albireo_runtime::AlertPolicy::standard(),
    };

    let cfg = ServeConfig {
        workload: Workload {
            process,
            mix,
            classes,
        },
        requests,
        seed,
        policy,
        admission,
        faults,
        record_cap,
        autoscale,
        alert,
    };
    // Checkpoint/resume flags. `--checkpoint-every` runs the single
    // simulation through the checkpoint-boundary machinery; `--resume`
    // restarts one from a snapshot file written by `--checkpoint-out`.
    let checkpoint_every = match args.get("checkpoint-every") {
        Some(raw) => {
            let every: f64 = raw.parse().map_err(|_| {
                CliError::Unknown(
                    "--checkpoint-every needs an interval in simulated seconds".into(),
                )
            })?;
            if !(every.is_finite() && every > 0.0) {
                return Err(CliError::Unknown(
                    "--checkpoint-every must be positive".into(),
                ));
            }
            Some(every)
        }
        None => None,
    };
    let resume_path = args.get("resume");
    let checkpoint_out = args.get("checkpoint-out");
    let report_jsonl = args.get("report-jsonl");
    let metrics_out = args.get("metrics-out");
    // Self-describing diagnostic header for traced/exported runs: the
    // full `ServeConfig` display line plus the checkpoint cadence,
    // which is a CLI-level knob living outside the config proper.
    let config_header = match checkpoint_every {
        Some(every) => format!("config: {cfg}, checkpoint every {every}s\n"),
        None => format!("config: {cfg}\n"),
    };
    let halt_after = args.get_parsed_or("halt-after-checkpoints", 0u64, "a checkpoint count")?;
    let checkpointing = checkpoint_every.is_some() || resume_path.is_some();
    if checkpointing {
        if replicas != 1 {
            return Err(CliError::Unknown(
                "checkpoint/resume drives a single simulation; drop --replicas".into(),
            ));
        }
        if args.get("trace-out").is_some() || args.get("events-out").is_some() {
            return Err(CliError::Unknown(
                "trace capture re-runs the whole simulation and cannot cross a checkpoint \
                 boundary; drop --trace-out/--events-out"
                    .into(),
            ));
        }
    } else {
        for (flag, present) in [
            ("checkpoint-out", checkpoint_out.is_some()),
            ("report-jsonl", report_jsonl.is_some()),
            ("halt-after-checkpoints", halt_after > 0),
        ] {
            if present {
                return Err(CliError::Unknown(format!(
                    "--{flag} needs --checkpoint-every (or --resume)"
                )));
            }
        }
    }

    let (reports, trace_note) = if checkpointing {
        use std::io::Write as _;
        let mut jsonl = match report_jsonl {
            Some(path) => {
                // A resumed run appends: the stream is the continuation
                // of the interrupted run's progress log.
                let file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(resume_path.is_some())
                    .truncate(resume_path.is_none())
                    .write(true)
                    .open(path)
                    .map_err(|e| CliError::Io(format!("cannot open {path}: {e}")))?;
                Some(file)
            }
            None => None,
        };
        // Resume snapshots are parsed before the checkpoint callback is
        // built: the alert-transition JSONL stream must continue from
        // the count already written by the interrupted run, not replay
        // the log from the top.
        let resume_snapshot = match resume_path {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
                Some(SimSnapshot::parse(&text).map_err(CliError::Unknown)?)
            }
            None => None,
        };
        let mut alerts_written = resume_snapshot
            .as_ref()
            .map_or(0, |s| s.alert_events().len());
        let mut metric_points: Vec<(f64, albireo_obs::MetricsSnapshot)> = Vec::new();
        let want_metrics = metrics_out.is_some();
        let mut io_err: Option<String> = None;
        let on_checkpoint = |snap: &SimSnapshot| -> bool {
            if let Some(path) = checkpoint_out {
                if let Err(e) = std::fs::write(path, snap.to_text()) {
                    io_err = Some(format!("cannot write {path}: {e}"));
                    return false;
                }
            }
            if let Some(file) = jsonl.as_mut() {
                if let Err(e) = writeln!(file, "{}", snap.progress_json()) {
                    io_err = Some(format!("cannot write progress line: {e}"));
                    return false;
                }
                for line in snap.alert_json_lines(alerts_written) {
                    if let Err(e) = writeln!(file, "{line}") {
                        io_err = Some(format!("cannot write alert line: {e}"));
                        return false;
                    }
                }
            }
            alerts_written = snap.alert_events().len();
            if want_metrics {
                metric_points.push((snap.at_s(), snap.metrics_snapshot()));
            }
            halt_after == 0 || snap.checkpoints() < halt_after
        };
        let outcome = match &resume_snapshot {
            Some(snapshot) => resume_checkpointed(
                &fleet,
                &cfg,
                snapshot,
                checkpoint_every.unwrap_or(0.0),
                on_checkpoint,
            )
            .map_err(CliError::Unknown)?,
            None => simulate_checkpointed(
                &fleet,
                &cfg,
                checkpoint_every.expect("checkpointing implies an interval"),
                on_checkpoint,
            ),
        };
        if let Some(msg) = io_err {
            return Err(CliError::Io(msg));
        }
        let metrics_note = match metrics_out {
            Some(path) => {
                std::fs::write(
                    path,
                    albireo_obs::openmetrics::render_series(&metric_points),
                )
                .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
                Some((
                    format!(
                        "{config_header}wrote {path}: OpenMetrics series, {} point(s)\n",
                        metric_points.len()
                    ),
                    metric_points
                        .last()
                        .map(|(_, s)| s.clone())
                        .unwrap_or_default(),
                ))
            }
            None => None,
        };
        match outcome {
            ServeOutcome::Completed(report) => (vec![*report], metrics_note),
            ServeOutcome::Halted { checkpoints, at_s } => {
                let note = checkpoint_out
                    .map(|p| format!("; resume with --resume {p}"))
                    .unwrap_or_default();
                return Ok(format!(
                    "{config_header}halted after checkpoint {checkpoints} (t={at_s}s){note}\n"
                ));
            }
        }
    } else {
        let reports = replicate(&fleet, &cfg, replicas, Parallelism::default());

        // Trace capture re-runs replica 0 (same seed, same pure function)
        // under an enabled Obs, so the replicated reports above stay
        // byte-for-byte what an untraced run produces.
        let obs = trace_obs(args);
        let trace_note = if obs.is_enabled() {
            simulate_observed(&fleet, &cfg, &obs);
            let snapshot = obs.snapshot();
            let mut note = config_header.clone();
            note.push_str(&write_trace_outputs(
                args,
                &obs,
                &trace_track_names(&fleet),
            )?);
            note.push_str(&write_metrics_out(args, &obs)?);
            Some((note, snapshot))
        } else {
            None
        };
        (reports, trace_note)
    };

    let out = if args.flag("json") {
        if reports.len() == 1 {
            match &trace_note {
                Some((_, snapshot)) => reports[0].to_json_with_metrics(snapshot),
                None => reports[0].to_json(),
            }
        } else {
            let mut s = String::from("[\n");
            for (i, r) in reports.iter().enumerate() {
                s.push_str(&r.to_json());
                if i + 1 < reports.len() {
                    s.truncate(s.trim_end().len());
                    s.push_str(",\n");
                }
            }
            s.push_str("]\n");
            s
        }
    } else {
        let mut s = String::new();
        for (i, r) in reports.iter().enumerate() {
            if reports.len() > 1 {
                s.push_str(&format!("replica {i} (seed {}):\n", r.seed));
            }
            s.push_str(&r.render_text());
        }
        if reports.len() > 1 {
            let combined = reports
                .iter()
                .fold(0xC0FF_EE00u64, |acc, r| acc.rotate_left(13) ^ r.digest());
            s.push_str(&format!("combined digest {combined:016x}\n"));
        }
        if let Some((note, _)) = &trace_note {
            s.push_str(note);
        }
        s
    };
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &out)
                .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
            Ok(format!(
                "wrote {path}: {} replica(s), digest {}\n",
                reports.len(),
                reports[0].digest_hex()
            ))
        }
        None => Ok(out),
    }
}

/// `albireo plan [...]` — the capacity planner: searches chip mixes,
/// batching policies, and autoscaling policies for the minimum-energy
/// fleet that meets an SLO, scoring every candidate with the serving
/// simulator. Deterministic at any `--threads` value; `--spec` replays
/// a plan from its canonical one-line echo.
pub fn plan(args: &Args) -> Result<String, CliError> {
    use albireo_obs::Obs;
    use albireo_plan::{parse_policy, PlanSpec, SloSpec};
    use albireo_runtime::{AutoscalePolicy, FaultSpec, Workload};

    let spec = match args.get("spec") {
        Some(line) => {
            // The spec line fixes the whole plan; mixing it with shape
            // flags would silently ignore one side.
            let shape_flags = [
                "rate",
                "slo",
                "chips",
                "max-chips",
                "networks",
                "arrival",
                "burst",
                "amplitude",
                "period",
                "spike",
                "spike-at",
                "spike-decay",
                "classes",
                "requests",
                "screen-requests",
                "seed",
                "replicas",
                "policies",
                "queue-cap",
                "autoscale",
                "faults",
            ];
            if let Some(conflict) = shape_flags.iter().find(|f| args.get(f).is_some()) {
                return Err(CliError::Unknown(format!(
                    "--spec already fixes the whole plan; drop --{conflict}"
                )));
            }
            PlanSpec::parse(line).map_err(CliError::Unknown)?
        }
        None => {
            let rate = args.get_parsed_or("rate", 2000.0f64, "a rate in requests/s")?;
            if !(rate.is_finite() && rate > 0.0) {
                return Err(CliError::Unknown("--rate must be positive".into()));
            }
            let slo = args
                .get("slo")
                .ok_or_else(|| CliError::Args(ArgError::MissingOption("slo".to_string())))
                .and_then(|raw| SloSpec::parse(raw).map_err(CliError::Unknown))?;
            let requests = args.get_parsed_or("requests", 2000usize, "a request count")?;
            if requests == 0 {
                return Err(CliError::Unknown("--requests must be at least 1".into()));
            }
            let screen_requests = args.get_parsed_or(
                "screen-requests",
                requests.min(300),
                "a screening run length",
            )?;
            let seed = args.get_parsed_or("seed", 42u64, "a seed")?;
            let replicas = args.get_parsed_or("replicas", 1usize, "a replica count")?;

            // Equal-weight network mix by name over the model zoo (the
            // fleet varies per candidate, so unsupported networks
            // surface as infeasible candidates, not errors).
            let models = zoo::serving_models();
            let mut mix = Vec::new();
            for name in args.get_or("networks", "alexnet").split(',') {
                let name = name.trim();
                if name.is_empty() {
                    continue;
                }
                let idx = models
                    .iter()
                    .position(|m| m.name().eq_ignore_ascii_case(name))
                    .ok_or_else(|| {
                        CliError::Unknown(format!(
                            "unknown network `{name}` (the planner serves: {})",
                            models
                                .iter()
                                .map(|m| m.name())
                                .collect::<Vec<&str>>()
                                .join(", ")
                        ))
                    })?;
                if mix.iter().any(|&(seen, _)| seen == idx) {
                    return Err(CliError::Unknown(format!(
                        "network `{name}` appears twice in --networks"
                    )));
                }
                mix.push((idx, 1.0));
            }
            if mix.is_empty() {
                return Err(CliError::Unknown("--networks names no network".into()));
            }

            let process = parse_arrival(args, rate)?;
            let classes = match args.get("classes") {
                Some(list) => albireo_runtime::ClassSpec::parse_list(list, None)
                    .map_err(|e| CliError::Unknown(format!("--classes: {e}")))?,
                None => Vec::new(),
            };

            let list = |raw: &str| -> Vec<String> {
                raw.split(['|', ','])
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            };
            let chip_kinds = list(args.get_or("chips", "albireo_9:C"));
            let max_chips = args.get_parsed_or("max-chips", 3usize, "a fleet size")?;
            let mut policies = Vec::new();
            for p in list(args.get_or("policies", "immediate")) {
                policies.push(parse_policy(&p).map_err(CliError::Unknown)?);
            }
            let mut autoscale = Vec::new();
            for a in list(args.get_or("autoscale", "static")) {
                autoscale.push(AutoscalePolicy::parse(&a).map_err(CliError::Unknown)?);
            }
            let queue_cap =
                args.get_parsed_or("queue-cap", 64usize, "a capacity (0 = unbounded)")?;
            let faults = match args.get("faults") {
                Some(raw) => FaultSpec::parse(raw).map_err(CliError::Unknown)?,
                None => FaultSpec::none(),
            };

            let spec = PlanSpec {
                workload: Workload {
                    process,
                    mix,
                    classes,
                },
                requests,
                screen_requests,
                seed,
                replicas,
                slo,
                chip_kinds,
                max_chips,
                policies,
                queue_capacity: if queue_cap == 0 {
                    usize::MAX
                } else {
                    queue_cap
                },
                autoscale,
                faults,
            };
            spec.validate().map_err(CliError::Unknown)?;
            spec
        }
    };

    let report = albireo_plan::plan(
        &spec,
        Parallelism::global(),
        &Obs::disabled(),
        args.flag("exhaustive"),
    )
    .map_err(CliError::Unknown)?;

    if let Some(path) = args.get("csv-out") {
        std::fs::write(path, report.to_csv())
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
    }
    let out = if args.flag("json") {
        report.to_json()
    } else {
        report.render_text()
    };
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &out)
                .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
            Ok(format!(
                "wrote {path}: {} candidate(s), {} feasible, digest {}\n",
                report.candidates_total,
                report.frontier.len(),
                report.digest_hex()
            ))
        }
        None => Ok(out),
    }
}

/// `albireo compare [...]` — every backend flows through the same
/// [`Accelerator`](albireo_baselines::Accelerator) trait, so adding a
/// backend adds a row here for free.
pub fn compare(args: &Args) -> Result<String, CliError> {
    use albireo_baselines::{reported_accelerators, Accelerator, DeapCnn, Pixel};
    use albireo_core::accel::AlbireoAccelerator;
    use albireo_modes::{GemmMode, WinogradAccelerator};

    let network = parse_network(args.get_or("network", "vgg16"))?;
    let mut accels: Vec<Box<dyn Accelerator>> = vec![
        Box::new(Pixel::paper_60w()),
        Box::new(DeapCnn::paper_60w()),
        Box::new(AlbireoAccelerator::albireo_27(
            TechnologyEstimate::Conservative,
        )),
        Box::new(WinogradAccelerator::winograd_27(
            TechnologyEstimate::Conservative,
        )),
        Box::new(GemmMode::gemm_27(TechnologyEstimate::Conservative)),
    ];
    for acc in reported_accelerators() {
        accels.push(Box::new(acc));
    }
    let rows: Vec<Vec<String>> = accels
        .iter()
        .filter(|a| a.supports(&network))
        .map(|a| {
            let c = a.cost(&network);
            vec![
                a.description(),
                format_seconds(c.latency_s),
                format_joules(c.energy_j),
                format!("{:.3}", c.edp_mj_ms()),
            ]
        })
        .collect();
    Ok(format!(
        "{}:\n{}",
        network.name(),
        format_table(&["accelerator", "latency", "energy", "EDP (mJ·ms)"], &rows)
    ))
}

/// `albireo faults [...]` — inject hardware faults into the analog engine
/// and report the error impact on a reference convolution.
pub fn faults(args: &Args) -> Result<String, CliError> {
    use albireo_core::analog::{AnalogEngine, AnalogSimConfig, Fault, FaultSet};
    use albireo_tensor::conv::{conv2d, ConvSpec};
    use albireo_tensor::{Tensor3, Tensor4};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut set = FaultSet::new();
    if let Some(parts) = args.get_list::<usize>("dead-ring", "R,C,O integers")? {
        if parts.len() != 3 {
            return Err(CliError::Unknown("--dead-ring needs R,C,O".into()));
        }
        set.push(Fault::DeadRing {
            row: parts[0],
            col: parts[1],
            output: parts[2],
        });
    }
    if let Some(raw) = args.get("dead-channel") {
        let column: usize = raw.trim().parse().map_err(|_| {
            CliError::Unknown(format!(
                "bad --dead-channel value `{raw}` (need a column index)"
            ))
        })?;
        set.push(Fault::DeadChannel { column });
    }
    if let Some(raw) = args.get("stuck-mzm") {
        let parts: Vec<&str> = raw.split(',').collect();
        if parts.len() != 3 {
            return Err(CliError::Unknown("--stuck-mzm needs R,C,W".into()));
        }
        let row = parts[0]
            .trim()
            .parse()
            .map_err(|_| CliError::Unknown("bad R".into()))?;
        let col = parts[1]
            .trim()
            .parse()
            .map_err(|_| CliError::Unknown("bad C".into()))?;
        let weight = parts[2]
            .trim()
            .parse()
            .map_err(|_| CliError::Unknown("bad W".into()))?;
        set.push(Fault::StuckMzm { row, col, weight });
    }

    let chip = chip_from(args)?;
    let mut rng = StdRng::seed_from_u64(1550);
    let input = Tensor3::random_uniform(3, 12, 12, 0.0, 1.0, &mut rng);
    let kernels = Tensor4::random_gaussian(2, 3, 3, 3, 0.3, &mut rng);
    let spec = ConvSpec::unit();
    let reference = conv2d(&input, &kernels, &spec);
    let fs = input.max_abs() * kernels.max_abs() * 27.0;

    let healthy = {
        let mut e = AnalogEngine::new(&chip, AnalogSimConfig::default());
        e.conv2d(&input, &kernels, &spec).max_abs_diff(&reference) / fs
    };
    let faulty = {
        let mut e = AnalogEngine::new(&chip, AnalogSimConfig::default());
        let n = set.len();
        e.inject_faults(set);
        let err = e.conv2d(&input, &kernels, &spec).max_abs_diff(&reference) / fs;
        (err, n)
    };
    Ok(format!(
        "reference 3x3x3 convolution, {} fault(s) injected:\n  healthy error: {:.3e} of full scale ({:.1} effective bits)\n  faulty  error: {:.3e} of full scale ({:.1} effective bits)\n  degradation:   {:.1}x\n",
        faulty.1,
        healthy,
        -healthy.log2(),
        faulty.0,
        -faulty.0.log2(),
        faulty.0 / healthy,
    ))
}

/// `albireo experiment <name>|all`
pub fn experiment(args: &Args) -> Result<String, CliError> {
    let name = args
        .positionals()
        .first()
        .map(String::as_str)
        .unwrap_or("all");
    let out = match name {
        "all" => albireo_bench::all_experiments(),
        "fig3" => albireo_bench::fig3_noise_precision(),
        "fig4a" => albireo_bench::fig4a_spectrum(),
        "fig4b" => albireo_bench::fig4b_temporal(),
        "fig4c" => albireo_bench::fig4c_crosstalk_precision(),
        "fig7" => albireo_bench::fig7_dataflow_trace(),
        "fig8" => albireo_bench::fig8_photonic_comparison(),
        "fig9" => albireo_bench::fig9_area_breakdown(),
        "table1" => albireo_bench::table1_device_powers(),
        "table2" => albireo_bench::table2_optical_params(),
        "table3" => albireo_bench::table3_power_breakdown(),
        "table4" => albireo_bench::table4_electronic_comparison(),
        "wdm" => albireo_bench::wdm_efficiency(),
        "summary" => albireo_bench::summary_ratios(),
        "ablations" => albireo_bench::ablation_report(),
        "thermal" => albireo_bench::thermal_sensitivity(),
        "timing" => albireo_bench::timing_closure(),
        "power-delivery" => albireo_bench::power_delivery_study(),
        "weights" => albireo_bench::weight_distribution_study(),
        "scaling" => albireo_bench::scaling_study(),
        "fidelity" => albireo_bench::inference_fidelity(),
        "dataflow" => albireo_bench::dataflow_alternatives(),
        "allocation" => albireo_bench::allocation_study(),
        other => {
            return Err(CliError::Unknown(format!(
                "unknown experiment `{other}` (try: all, fig3, fig4a, fig4b, fig4c, fig7, fig8, \
                 fig9, table1..table4, wdm, summary, ablations, thermal, timing, \
                 power-delivery, weights, scaling, fidelity, dataflow, allocation)"
            )))
        }
    };
    Ok(out)
}

/// Dispatches a subcommand, returning its printable output.
/// `albireo perf-diff <old.json> <new.json> [--threshold PCT]` — the
/// perf-regression gate: compares two performance JSON files
/// (`BENCH_*.json` or `albireo.profile/v1` reports) metric by metric
/// and exits 3 when any directional metric regresses past the
/// threshold (default 10%).
pub fn perf_diff(args: &Args) -> Result<String, CliError> {
    let pos = args.positionals();
    let [old_path, new_path] = pos else {
        return Err(CliError::Unknown(
            "perf-diff needs exactly two files: <old.json> <new.json>".into(),
        ));
    };
    let threshold: f64 = args
        .get_or("threshold", "10")
        .parse()
        .map_err(|_| CliError::Unknown("--threshold needs a percentage".into()))?;
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))
    };
    let diff =
        albireo_bench::perfdiff::PerfDiff::compare(&read(old_path)?, &read(new_path)?, threshold)
            .map_err(CliError::Unknown)?;
    if diff.rows.is_empty() {
        return Err(CliError::Unknown(format!(
            "no comparable performance metrics between {old_path} and {new_path}"
        )));
    }
    let text = diff.render_text();
    if diff.regressions().next().is_some() {
        return Err(CliError::Gate(format!(
            "performance regression: {old_path} -> {new_path}\n{text}"
        )));
    }
    Ok(text)
}

pub fn dispatch(command: &str, args: &Args) -> Result<String, CliError> {
    if args.get("threads").is_some() {
        let threads = args.get_parsed_or("threads", 0usize, "a thread count (0 = auto)")?;
        Parallelism::set_global(Parallelism::with_threads(threads));
    }
    // `--profile <path>` wraps any command in the wall-clock profiler
    // and writes the `albireo.profile/v1` phase report on success. The
    // profiler reads the host clock, so the report itself is not
    // deterministic — but it never touches simulation state, digests,
    // or the command's own output.
    let profile_out = args.get("profile").map(str::to_string);
    if profile_out.is_some() {
        albireo_obs::profile::reset();
        albireo_obs::profile::set_enabled(true);
    }
    let result = dispatch_inner(command, args);
    if let Some(path) = profile_out {
        albireo_obs::profile::set_enabled(false);
        let report = albireo_obs::profile::take_report();
        if result.is_ok() {
            std::fs::write(&path, report.to_json())
                .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        }
    }
    result
}

fn dispatch_inner(command: &str, args: &Args) -> Result<String, CliError> {
    match command {
        "networks" => Ok(networks()),
        "evaluate" => evaluate(args),
        "power" => power(args),
        "area" => area(args),
        "precision" => precision(args),
        "trace" => trace(args),
        "sweep" => sweep(args),
        "compare" => compare(args),
        "faults" => faults(args),
        "experiment" => experiment(args),
        "bench" => bench(args),
        "serve" => serve(args),
        "plan" => plan(args),
        "perf-diff" => perf_diff(args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::Unknown(format!(
            "unknown command `{other}`; run `albireo help`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(list.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn networks_lists_all_four() {
        let out = networks();
        for name in ["AlexNet", "VGG16", "ResNet18", "MobileNet"] {
            assert!(out.contains(name));
        }
    }

    #[test]
    fn networks_lists_dense_extensions() {
        let out = networks();
        assert!(out.contains("MLP-Mixer"), "{out}");
        assert!(out.contains("Transformer-Enc"), "{out}");
    }

    #[test]
    fn evaluate_prints_dataflow_comparison() {
        let out = evaluate(&args(&["alexnet"])).unwrap();
        assert!(out.contains("Dataflow comparison"), "{out}");
        assert!(out.contains("depth-first"), "{out}");
        assert!(out.contains("weight-stationary"), "{out}");
        assert!(out.contains("energy delta"), "{out}");
    }

    #[test]
    fn evaluate_resolves_dense_network_aliases() {
        for name in ["mlp-mixer", "mixer", "transformer", "transformer-enc"] {
            let out = evaluate(&args(&[name])).unwrap();
            assert!(out.contains("latency"), "{name}: {out}");
        }
    }

    #[test]
    fn evaluate_happy_path() {
        let out = evaluate(&args(&["vgg16", "--estimate", "m", "--ng", "27"])).unwrap();
        assert!(out.contains("VGG16"));
        assert!(out.contains("Albireo-M"));
        assert!(out.contains("Ng=27"));
    }

    #[test]
    fn evaluate_per_layer_listing() {
        let out = evaluate(&args(&["alexnet", "--per-layer", "3"])).unwrap();
        assert!(out.contains("layer"));
        assert!(out.lines().count() > 5);
    }

    #[test]
    fn evaluate_unknown_network() {
        let err = evaluate(&args(&["lenet"])).unwrap_err();
        assert!(err.to_string().contains("lenet"));
    }

    #[test]
    fn power_reports_total() {
        let out = power(&args(&["--estimate", "conservative"])).unwrap();
        assert!(out.contains("22.7"), "{out}");
    }

    #[test]
    fn area_reports_total() {
        let out = area(&args(&[])).unwrap();
        assert!(out.contains("125.1"), "{out}");
    }

    #[test]
    fn precision_defaults_to_paper_point() {
        let out = precision(&args(&[])).unwrap();
        assert!(out.contains("k²=0.03"));
        assert!(out.contains("crosstalk-limited"));
    }

    #[test]
    fn precision_rejects_bad_k2() {
        assert!(precision(&args(&["--k2", "2.0"])).is_err());
        assert!(precision(&args(&["--wavelengths", "0"])).is_err());
    }

    #[test]
    fn trace_shows_writebacks() {
        let out = trace(&args(&["--rows", "1", "--cols", "5", "--channels", "9"])).unwrap();
        assert!(out.contains("write"));
        assert!(out.contains("3 cycles"));
    }

    #[test]
    fn sweep_requires_param_and_values() {
        assert!(sweep(&args(&["--values", "3,9"])).is_err());
        assert!(sweep(&args(&["--param", "ng"])).is_err());
        let out = sweep(&args(&["--param", "ng", "--values", "3,9"])).unwrap();
        assert!(out.contains("Ng=3"));
        assert!(out.contains("Ng=9"));
    }

    #[test]
    fn sweep_rejects_unknown_param() {
        let err = sweep(&args(&["--param", "nz", "--values", "1"])).unwrap_err();
        assert!(err.to_string().contains("nz"));
    }

    #[test]
    fn compare_includes_all_baselines() {
        let out = compare(&args(&["--network", "alexnet"])).unwrap();
        for name in [
            "PIXEL",
            "DEAP-CNN",
            "Albireo-27",
            "Eyeriss",
            "ENVISION",
            "UNPU",
        ] {
            assert!(out.contains(name), "missing {name} in {out}");
        }
    }

    #[test]
    fn compare_includes_operating_modes() {
        // Winograd supports every network (direct fallback); the GEMM
        // mode only appears for dense/pointwise networks — compare's
        // supports() filter hides it on spatial CNNs.
        let cnn = compare(&args(&["--network", "vgg16"])).unwrap();
        assert!(cnn.contains("Winograd"), "{cnn}");
        assert!(!cnn.contains("GEMM"), "{cnn}");
        let dense = compare(&args(&["--network", "mlp-mixer"])).unwrap();
        assert!(dense.contains("GEMM"), "{dense}");
        assert!(dense.contains("Winograd"), "{dense}");
    }

    #[test]
    fn serve_rejects_fleet_that_cannot_serve_the_mix() {
        // A gemm-only fleet has no chip that can schedule AlexNet's
        // spatial convolutions: a typed usage error (exit 2), no panic.
        let err = serve(&args(&[
            "--fleet",
            "gemm:C",
            "--networks",
            "alexnet",
            "--requests",
            "10",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("supports network"), "{err}");
    }

    #[test]
    fn serve_heterogeneous_mode_fleet_serves_mixed_networks() {
        let out = serve(&args(&[
            "--fleet",
            "albireo_9:C,winograd:C,gemm:C",
            "--networks",
            "vgg16,mlp-mixer",
            "--requests",
            "60",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert!(out.contains("goodput"), "{out}");
    }

    #[test]
    fn experiment_dispatch() {
        let out = experiment(&args(&["fig9"])).unwrap();
        assert!(out.contains("area breakdown"));
        assert!(experiment(&args(&["nonsense"])).is_err());
    }

    #[test]
    fn dispatch_routes_and_rejects() {
        assert!(dispatch("networks", &args(&[])).is_ok());
        assert!(dispatch("help", &args(&[])).unwrap().contains("USAGE"));
        assert!(dispatch("frobnicate", &args(&[])).is_err());
    }

    #[test]
    fn faults_command_reports_degradation() {
        let healthy = faults(&args(&[])).unwrap();
        assert!(healthy.contains("0 fault(s)"));
        let broken = faults(&args(&["--dead-channel", "1"])).unwrap();
        assert!(broken.contains("1 fault(s)"));
        assert!(broken.contains("degradation"));
    }

    #[test]
    fn faults_command_validates_triples() {
        assert!(faults(&args(&["--dead-ring", "1,2"])).is_err());
        assert!(faults(&args(&["--stuck-mzm", "1,2"])).is_err());
        assert!(faults(&args(&["--dead-ring", "1,2,3"])).is_ok());
        assert!(faults(&args(&["--stuck-mzm", "0,0,0.5"])).is_ok());
    }

    #[test]
    fn faults_command_rejects_bad_dead_channel() {
        let err = faults(&args(&["--dead-channel", "broken"])).unwrap_err();
        assert!(err.to_string().contains("dead-channel"), "{err}");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn errors_carry_exit_codes() {
        let usage = CliError::Unknown("nope".into());
        assert_eq!(usage.exit_code(), 2);
        assert!(usage.is_usage());
        let io = CliError::Io("cannot write /nope: denied".into());
        assert_eq!(io.exit_code(), 1);
        assert!(!io.is_usage());
    }

    #[test]
    fn extension_networks_evaluate() {
        for name in ["vgg19", "resnet34", "mobilenet-0.5", "tiny"] {
            let out = evaluate(&args(&[name])).unwrap();
            assert!(out.contains("latency"), "{name}: {out}");
        }
    }

    #[test]
    fn stride_penalty_flag_changes_result() {
        let with = evaluate(&args(&["alexnet"])).unwrap();
        let without = evaluate(&args(&["alexnet", "--no-stride-penalty"])).unwrap();
        assert_ne!(with, without);
    }

    #[test]
    fn sweep_json_emits_machine_readable_points() {
        let out = sweep(&args(&["--param", "ng", "--values", "3,9", "--json"])).unwrap();
        assert!(out.trim_start().starts_with('['));
        assert!(out.trim_end().ends_with(']'));
        for key in [
            "\"design\"",
            "\"power_w\"",
            "\"latency_s\"",
            "\"edp_mj_ms\"",
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
        assert_eq!(out.matches("\"design\"").count(), 2);
    }

    #[test]
    fn bench_command_emits_report_schema() {
        let out = bench(&args(&["--thread-counts", "1,2", "--target-ms", "1"])).unwrap();
        for key in [
            "albireo.bench.parallel/v1",
            "\"paper_grid\"",
            "\"speedup\"",
            "\"deterministic\": true",
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
        assert!(bench(&args(&["--thread-counts", ""])).is_err());
    }

    #[test]
    fn serve_reports_service_metrics() {
        let out = serve(&args(&["--requests", "150", "--seed", "7"])).unwrap();
        for key in [
            "p50",
            "p95",
            "p99",
            "shed",
            "goodput",
            "mJ/request",
            "util",
            "digest",
            "albireo_9",
            "albireo_27",
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
        // Same seed, same report.
        assert_eq!(
            out,
            serve(&args(&["--requests", "150", "--seed", "7"])).unwrap()
        );
    }

    #[test]
    fn serve_json_carries_schema_and_digest() {
        let out = serve(&args(&["--requests", "80", "--json"])).unwrap();
        assert!(out.contains("albireo.bench.serving/v4"));
        assert!(out.contains("\"digest\""));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn serve_survives_chip_failure_mid_run() {
        let out = serve(&args(&[
            "--requests",
            "200",
            "--rate",
            "4000",
            "--fail",
            "1@0.005",
            "--degrade",
            "0:4@0.002",
        ]))
        .unwrap();
        assert!(out.contains("OFFLINE"), "{out}");
        assert!(out.contains("PLCGs down"), "{out}");
        assert!(
            !out.contains("completed 0 "),
            "goodput must be nonzero: {out}"
        );
    }

    #[test]
    fn serve_validates_inputs() {
        assert!(serve(&args(&["--policy", "fifo"])).is_err());
        assert!(serve(&args(&["--fleet", "tpu"])).is_err());
        assert!(serve(&args(&["--networks", "lenet"])).is_err());
        assert!(serve(&args(&["--rate", "0"])).is_err());
        assert!(serve(&args(&["--fail", "7@0.1"])).is_err());
        assert!(serve(&args(&["--fail", "0"])).is_err());
        assert!(serve(&args(&["--degrade", "0:0@0.1"])).is_err());
        assert!(serve(&args(&["--arrival", "fractal"])).is_err());
        assert!(serve(&args(&["--arrival", "diurnal", "--amplitude", "1.5"])).is_err());
        assert!(serve(&args(&["--arrival", "flash", "--spike", "0.5"])).is_err());
        assert!(serve(&args(&["--trace-jsonl", "/no/such/file.jsonl"])).is_err());
        assert!(serve(&args(&["--classes", "vip"])).is_err());
        assert!(serve(&args(&["--classes", "vip:-1"])).is_err());
        assert!(serve(&args(&["--classes", "vip:1:0"])).is_err());
        assert!(serve(&args(&["--slo", "-3"])).is_err());
        // A fleet of reported-number chips cannot serve a network outside
        // their published benchmark set.
        let err = serve(&args(&["--fleet", "eyeriss", "--networks", "resnet18"])).unwrap_err();
        assert!(err.to_string().contains("resnet18"), "{err}");
    }

    #[test]
    fn serve_production_arrival_shapes_run() {
        for extra in [
            &[
                "--arrival",
                "diurnal",
                "--amplitude",
                "0.8",
                "--period",
                "0.5",
            ][..],
            &["--arrival", "flash", "--spike", "6", "--spike-at", "0.02"][..],
        ] {
            let mut argv = vec!["--requests", "200", "--seed", "3", "--json"];
            argv.extend_from_slice(extra);
            let out = serve(&args(&argv)).unwrap();
            assert!(out.contains("\"offered\": 200"), "{out}");
            // Same seed reproduces byte-for-byte.
            assert_eq!(out, serve(&args(&argv)).unwrap());
        }
    }

    #[test]
    fn serve_classes_report_slo_attainment() {
        let argv = [
            "--requests",
            "300",
            "--rate",
            "4000",
            "--classes",
            "interactive:3:5,batch:1",
            "--json",
        ];
        let out = serve(&args(&argv)).unwrap();
        assert!(out.contains("\"interactive\""), "{out}");
        assert!(out.contains("\"batch\""), "{out}");
        assert!(out.contains("\"slo_attainment\""), "{out}");
        // Best-effort classes report null SLO fields.
        assert!(out.contains("\"slo_ms\": null"), "{out}");
        // --slo alone wraps all traffic in one `default` class.
        let out = serve(&args(&["--requests", "100", "--slo", "5", "--json"])).unwrap();
        assert!(out.contains("\"default\""), "{out}");
    }

    #[test]
    fn serve_trace_jsonl_replays_a_file() {
        let path =
            std::env::temp_dir().join(format!("albireo_cli_trace_{}.jsonl", std::process::id()));
        std::fs::write(
            &path,
            "{\"arrival_s\": 0.001}\n{\"arrival_s\": 0.002, \"network\": 0}\n{\"arrival_s\": 0.004}\n",
        )
        .unwrap();
        let path_s = path.to_str().unwrap().to_string();
        let out = serve(&args(&[
            "--trace-jsonl",
            &path_s,
            "--requests",
            "3",
            "--json",
        ]))
        .unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("\"offered\": 3"), "{out}");
        assert!(out.contains("trace_file"), "{out}");
    }

    #[test]
    fn serve_record_cap_does_not_change_output() {
        // Reports never render the record sample, so capping it must be
        // invisible to every rendering — text and JSON alike.
        let full = serve(&args(&["--requests", "120", "--json"])).unwrap();
        let capped = serve(&args(&["--requests", "120", "--record-cap", "5", "--json"])).unwrap();
        assert_eq!(full, capped);
    }

    #[test]
    fn serve_heterogeneous_fleet_end_to_end() {
        let run = |extra: &[&str]| {
            let mut argv = vec![
                "--fleet",
                "albireo_27:A, deap:M, eyeriss",
                "--networks",
                "alexnet,vgg16",
                "--requests",
                "200",
                "--seed",
                "11",
            ];
            argv.extend_from_slice(extra);
            serve(&args(&argv)).unwrap()
        };
        let out = run(&[]);
        for key in ["albireo_27_A", "deap_M", "eyeriss", "digest"] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
        // Deterministic across repeat runs.
        assert_eq!(out, run(&[]));
        let json = run(&["--json"]);
        assert!(json.contains("albireo.bench.serving/v4"));
    }

    #[test]
    fn serve_replicas_and_policies_run() {
        let out = serve(&args(&[
            "--requests",
            "60",
            "--replicas",
            "2",
            "--policy",
            "size:4",
            "--networks",
            "alexnet,vgg16",
        ]))
        .unwrap();
        assert!(out.contains("replica 0"));
        assert!(out.contains("replica 1"));
        assert!(out.contains("combined digest"));
        assert!(out.contains("size4"));
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("albireo_cli_trace_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn serve_trace_out_writes_deterministic_chrome_trace() {
        let path = temp_path("serve_trace.json");
        let path_str = path.to_str().unwrap().to_string();
        let run = || {
            let out = serve(&args(&[
                "--requests",
                "120",
                "--seed",
                "7",
                "--trace-out",
                &path_str,
            ]))
            .unwrap();
            assert!(out.contains("trace events"), "{out}");
            assert!(out.contains("digest"), "{out}");
            std::fs::read_to_string(&path).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must give byte-identical traces");
        assert!(a.starts_with("{\"traceEvents\": ["));
        assert!(a.contains("\"ph\": \"X\""), "needs complete events");
        assert!(a.contains("\"thread_name\""));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_events_out_writes_jsonl_stream() {
        let path = temp_path("serve_events.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        let out = serve(&args(&[
            "--requests",
            "100",
            "--seed",
            "9",
            "--events-out",
            &path_str,
        ]))
        .unwrap();
        assert!(out.contains("JSONL"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().count() > 0);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"phase\": \"B\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_json_with_trace_embeds_metrics_snapshot() {
        let path = temp_path("serve_trace_json.json");
        let path_str = path.to_str().unwrap().to_string();
        let out = serve(&args(&[
            "--requests",
            "80",
            "--json",
            "--trace-out",
            &path_str,
        ]))
        .unwrap();
        assert!(out.contains("\"obs\": {"), "{out}");
        assert!(out.contains("albireo.obs/v1"));
        assert!(out.contains("serve.completed"));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
        // Without the trace flag the JSON stays unchanged.
        let plain = serve(&args(&["--requests", "80", "--json"])).unwrap();
        assert!(!plain.contains("\"obs\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_wall_clock_flag_keeps_trace_digest_stable() {
        let path = temp_path("serve_wall.json");
        let path_str = path.to_str().unwrap().to_string();
        let digest_line = |extra: &[&str]| {
            let mut argv = vec!["--requests", "60", "--seed", "3", "--trace-out", &path_str];
            argv.extend_from_slice(extra);
            let out = serve(&args(&argv)).unwrap();
            let line = out
                .lines()
                .find(|l| l.contains("trace events"))
                .unwrap()
                .to_string();
            line.split("digest ").nth(1).unwrap().to_string()
        };
        assert_eq!(digest_line(&[]), digest_line(&["--wall-clock"]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn evaluate_trace_out_writes_per_layer_spans() {
        let path = temp_path("evaluate_trace.json");
        let path_str = path.to_str().unwrap().to_string();
        let out = evaluate(&args(&["alexnet", "--trace-out", &path_str])).unwrap();
        assert!(out.contains("trace events"), "{out}");
        let trace = std::fs::read_to_string(&path).unwrap();
        assert!(trace.contains("\"ph\": \"X\""));
        assert!(trace.contains("\"layer\""));
        assert!(trace.contains("\"name\": \"engine\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn threads_option_sets_global_parallelism() {
        dispatch("networks", &args(&["--threads", "3"])).unwrap();
        assert_eq!(Parallelism::global().resolved_threads(), 3);
        Parallelism::set_global(Parallelism::auto());
        let err = dispatch("networks", &args(&["--threads", "many"])).unwrap_err();
        assert!(err.to_string().contains("many"));
    }

    #[test]
    fn plan_reports_winner_and_frontier() {
        let out = plan(&args(&[
            "--slo",
            "p99<5ms",
            "--rate",
            "8000",
            "--requests",
            "500",
            "--screen-requests",
            "120",
        ]))
        .unwrap();
        for key in ["winner:", "rank", "mJ/req", "pareto", "feasible"] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
        // The 8000 rps AlexNet stream needs two Albireo-9 chips; three
        // only add idle power.
        assert!(out.contains("albireo_9_C+albireo_9_C "), "{out}");
    }

    #[test]
    fn plan_json_carries_schema_and_digest() {
        let argv = [
            "--slo",
            "p99<5ms",
            "--rate",
            "8000",
            "--requests",
            "400",
            "--screen-requests",
            "100",
            "--json",
        ];
        let out = plan(&args(&argv)).unwrap();
        assert!(out.contains("albireo.plan/v1"), "{out}");
        assert!(out.contains("\"digest\""), "{out}");
        assert!(out.contains("\"frontier\""), "{out}");
        assert_eq!(out.matches('{').count(), out.matches('}').count());
        // Same flags, same plan, byte-for-byte.
        assert_eq!(out, plan(&args(&argv)).unwrap());
    }

    #[test]
    fn plan_spec_flag_replays_the_canonical_echo() {
        let flags = plan(&args(&[
            "--slo",
            "p99<6ms",
            "--rate",
            "7000",
            "--requests",
            "300",
            "--screen-requests",
            "80",
            "--json",
        ]))
        .unwrap();
        // The emitted spec line reproduces the identical plan via --spec.
        let spec_line = flags
            .lines()
            .find(|l| l.contains("\"spec\""))
            .and_then(|l| l.split('"').nth(3))
            .unwrap()
            .to_string();
        let replay = plan(&args(&["--spec", &spec_line, "--json"])).unwrap();
        assert_eq!(flags, replay);
    }

    #[test]
    fn plan_spec_conflicts_with_shape_flags() {
        let err = plan(&args(&["--spec", "slo=p99<5ms", "--rate", "9000"])).unwrap_err();
        assert!(err.to_string().contains("drop --rate"), "{err}");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn plan_validates_inputs() {
        // --slo is mandatory: a planner without a target has no feasible set.
        let err = plan(&args(&[])).unwrap_err();
        assert!(err.to_string().contains("--slo"), "{err}");
        assert!(plan(&args(&["--slo", "p99<5ms", "--rate", "0"])).is_err());
        assert!(plan(&args(&["--slo", "p99<5ms", "--networks", "lenet"])).is_err());
        assert!(plan(&args(&[
            "--slo",
            "p99<5ms",
            "--networks",
            "alexnet,alexnet"
        ]))
        .is_err());
        assert!(plan(&args(&["--slo", "p99<5ms", "--chips", "tpu"])).is_err());
        assert!(plan(&args(&["--slo", "p99<5ms", "--autoscale", "magic"])).is_err());
        assert!(plan(&args(&["--slo", "p99<5ms", "--policies", "fifo"])).is_err());
        assert!(plan(&args(&["--slo", "p99<5ms", "--requests", "0"])).is_err());
        // Aliased chip kinds cannot be repeated into multiset fleets.
        let err = plan(&args(&["--slo", "p99<5ms", "--chips", "edge=albireo_9:C"])).unwrap_err();
        assert!(err.to_string().contains("alias"), "{err}");
    }

    #[test]
    fn serve_checkpoint_resume_reproduces_the_report() {
        let ckpt = temp_path("serve_ckpt.snapshot");
        let ckpt_s = ckpt.to_str().unwrap().to_string();
        let base = [
            "--requests",
            "300",
            "--rate",
            "4000",
            "--seed",
            "7",
            "--fail",
            "1@0.01",
            "--json",
        ];
        let baseline = serve(&args(&base)).unwrap();
        // Checkpointing to completion changes nothing in the report.
        let mut argv = base.to_vec();
        argv.extend_from_slice(&["--checkpoint-every", "0.01", "--checkpoint-out", &ckpt_s]);
        assert_eq!(baseline, serve(&args(&argv)).unwrap());
        // Halt mid-run, then resume from the snapshot: byte-identical.
        let mut argv = base.to_vec();
        argv.extend_from_slice(&[
            "--checkpoint-every",
            "0.01",
            "--checkpoint-out",
            &ckpt_s,
            "--halt-after-checkpoints",
            "2",
        ]);
        let halted = serve(&args(&argv)).unwrap();
        assert!(halted.contains("halted after checkpoint 2"), "{halted}");
        assert!(halted.contains("--resume"), "{halted}");
        let mut argv = base.to_vec();
        argv.extend_from_slice(&["--resume", &ckpt_s]);
        assert_eq!(baseline, serve(&args(&argv)).unwrap());
        std::fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn serve_report_jsonl_streams_progress() {
        let path = temp_path("serve_progress.jsonl");
        let p = path.to_str().unwrap().to_string();
        serve(&args(&[
            "--requests",
            "200",
            "--rate",
            "4000",
            "--checkpoint-every",
            "0.01",
            "--report-jsonl",
            &p,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().count() >= 2, "{text}");
        for line in text.lines() {
            assert!(line.contains("albireo.serve.progress/v1"), "{line}");
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"offered\""), "{line}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_faults_spec_matches_the_legacy_flags() {
        let legacy = serve(&args(&[
            "--requests",
            "200",
            "--rate",
            "4000",
            "--fail",
            "1@0.005",
            "--degrade",
            "0:4@0.002",
            "--json",
        ]))
        .unwrap();
        let spec = serve(&args(&[
            "--requests",
            "200",
            "--rate",
            "4000",
            "--faults",
            "fail:1@0.005,degrade:0@0.002:4",
            "--json",
        ]))
        .unwrap();
        assert_eq!(legacy, spec);
        // Correlated clauses (rack + repair crews) run end to end.
        let out = serve(&args(&[
            "--requests",
            "200",
            "--rate",
            "4000",
            "--faults",
            "rack:0-1@0.005,crews:1:0.01:7",
            "--json",
        ]))
        .unwrap();
        assert!(out.contains("\"offered\": 200"), "{out}");
    }

    #[test]
    fn serve_checkpoint_flags_validate() {
        assert!(serve(&args(&["--checkpoint-every", "0"])).is_err());
        assert!(serve(&args(&["--checkpoint-every", "0.01", "--replicas", "2"])).is_err());
        // The dependent flags are rejected without a checkpoint cadence.
        assert!(serve(&args(&["--checkpoint-out", "/tmp/x"])).is_err());
        assert!(serve(&args(&["--report-jsonl", "/tmp/x"])).is_err());
        assert!(serve(&args(&["--halt-after-checkpoints", "1"])).is_err());
        assert!(serve(&args(&["--resume", "/no/such/snapshot"])).is_err());
        assert!(serve(&args(&["--faults", "melt:0@1"])).is_err());
        let tr = temp_path("ckpt_trace.json");
        let trs = tr.to_str().unwrap().to_string();
        assert!(serve(&args(&["--checkpoint-every", "0.01", "--trace-out", &trs])).is_err());
    }

    #[test]
    fn plan_faults_flag_threads_into_the_spec() {
        let out = plan(&args(&[
            "--slo",
            "p99<5ms",
            "--rate",
            "8000",
            "--requests",
            "600",
            "--screen-requests",
            "150",
            "--faults",
            "fail:0@0",
            "--json",
        ]))
        .unwrap();
        assert!(out.contains(";faults=fail:0@0\""), "{out}");
        let err = plan(&args(&["--spec", "slo=p99<5ms", "--faults", "fail:0@0"])).unwrap_err();
        assert!(err.to_string().contains("drop --faults"), "{err}");
        assert!(plan(&args(&["--slo", "p99<5ms", "--faults", "melt:0@1"])).is_err());
    }

    #[test]
    fn serve_rejects_duplicate_aliases_and_class_names() {
        let err = serve(&args(&["--fleet", "edge=albireo_9:C,edge=albireo_27:C"])).unwrap_err();
        assert!(err.to_string().contains("duplicate chip alias"), "{err}");
        assert_eq!(err.exit_code(), 2);
        let err = serve(&args(&["--classes", "vip:2:5,vip:1"])).unwrap_err();
        assert!(err.to_string().contains("duplicate class name"), "{err}");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn serve_slo_target_validates_and_reports_alerts() {
        for bad in ["1.0", "-0.1", "nan", "many"] {
            let err = serve(&args(&["--slo-target", bad])).unwrap_err();
            assert!(err.to_string().contains("--slo-target"), "{err}");
        }
        // An overloaded bounded queue sheds SLO traffic: alerts fire and
        // the v4 report carries the transition log.
        let argv = [
            "--requests",
            "600",
            "--rate",
            "60000",
            "--seed",
            "7",
            "--queue-cap",
            "16",
            "--classes",
            "vip:3:5,batch:1",
            "--json",
        ];
        let out = serve(&args(&argv)).unwrap();
        assert!(out.contains("\"alerts\": {"), "{out}");
        assert!(out.contains("\"type\": \"fire\""), "{out}");
        assert!(out.contains("\"alerts_fired\""), "{out}");
        // The alert objective never moves the run digest.
        let digest_of = |extra: &[&str]| {
            let mut v = argv.to_vec();
            v.extend_from_slice(extra);
            let out = serve(&args(&v)).unwrap();
            let at = out.find("\"digest\"").unwrap();
            out[at..].lines().next().unwrap().to_string()
        };
        assert_eq!(digest_of(&[]), digest_of(&["--slo-target", "0.9"]));
    }

    #[test]
    fn serve_report_jsonl_streams_alert_transitions_once() {
        let path = temp_path("serve_alerts.jsonl");
        let p = path.to_str().unwrap().to_string();
        serve(&args(&[
            "--requests",
            "600",
            "--rate",
            "60000",
            "--seed",
            "7",
            "--queue-cap",
            "16",
            "--classes",
            "vip:3:5,batch:1",
            "--checkpoint-every",
            "0.002",
            "--report-jsonl",
            &p,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let alert_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("albireo.serve.alert/v1"))
            .collect();
        assert!(!alert_lines.is_empty(), "{text}");
        assert!(alert_lines[0].contains("\"class\": \"vip\""), "{text}");
        assert!(alert_lines[0].contains("\"type\": \"fire\""), "{text}");
        // Each transition appears exactly once even though every
        // snapshot carries the full log.
        let mut seen = std::collections::HashSet::new();
        for line in &alert_lines {
            let key = line.split("\"checkpoint\"").nth(1).map(|rest| {
                let tail = rest.split_once(',').map(|(_, t)| t).unwrap_or(rest);
                tail.to_string()
            });
            assert!(seen.insert(key), "duplicate transition: {line}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_metrics_out_writes_openmetrics() {
        let path = temp_path("serve_metrics.txt");
        let p = path.to_str().unwrap().to_string();
        let base = ["--requests", "200", "--rate", "4000", "--seed", "7"];
        let mut argv = base.to_vec();
        argv.extend_from_slice(&["--metrics-out", &p]);
        let out = serve(&args(&argv)).unwrap();
        assert!(out.contains("config: poisson arrivals"), "{out}");
        assert!(out.contains("OpenMetrics"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("# TYPE serve_completed counter"), "{text}");
        assert!(text.ends_with("# EOF\n"), "{text}");
        // The exported file never perturbs the report itself.
        let baseline = serve(&args(&base)).unwrap();
        let again = serve(&args(&argv)).unwrap();
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("config:") && !l.starts_with("wrote "))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&baseline), strip(&again));
        // Checkpointed runs export a timestamped series instead.
        let mut argv = base.to_vec();
        argv.extend_from_slice(&["--checkpoint-every", "0.01", "--metrics-out", &p]);
        let out = serve(&args(&argv)).unwrap();
        assert!(out.contains("OpenMetrics series"), "{out}");
        assert!(out.contains("checkpoint every 0.01s"), "{out}");
        let series = std::fs::read_to_string(&path).unwrap();
        assert!(series.contains("serve_offered_total"), "{series}");
        // Timestamped samples: `name value ts` triplets.
        assert!(
            series
                .lines()
                .any(|l| l.starts_with("serve_offered_total ")
                    && l.split_whitespace().count() == 3),
            "{series}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn profile_flag_writes_wall_clock_report() {
        let path = temp_path("evaluate_profile.json");
        let p = path.to_str().unwrap().to_string();
        let out = dispatch(
            "evaluate",
            &args(&["tiny", "--profile", &p, "--threads", "2"]),
        )
        .unwrap();
        assert!(out.contains("on Albireo"), "{out}");
        let report = std::fs::read_to_string(&path).unwrap();
        assert!(
            report.contains("\"schema\": \"albireo.profile/v1\""),
            "{report}"
        );
        assert!(report.contains("\"attributed_fraction\""), "{report}");
        // The analytic evaluate path runs through the instrumented
        // parallel fan-out (tensor/photonics phases belong to the
        // numeric bench workloads, not this command).
        assert!(report.contains("parallel."), "{report}");
        // Profiling never changes the command's own output.
        let plain = dispatch("evaluate", &args(&["tiny", "--threads", "2"])).unwrap();
        assert_eq!(out, plain);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn perf_diff_exit_code_contract() {
        let old = temp_path("perf_old.json");
        let new = temp_path("perf_new.json");
        let o = old.to_str().unwrap().to_string();
        let n = new.to_str().unwrap().to_string();
        let row = |wall: f64| {
            format!(
                "{{\"rows\": [{{\"name\": \"analog_conv\", \"wall_ms\": {wall}, \
                 \"speedup\": 3.0}}]}}"
            )
        };
        std::fs::write(&old, row(100.0)).unwrap();
        std::fs::write(&new, row(100.0)).unwrap();
        // Identical inputs pass (exit 0).
        let out = perf_diff(&args(&[&o, &n])).unwrap();
        assert!(out.contains("0 regression(s)"), "{out}");
        // A 2x slowdown trips the gate with exit code 3.
        std::fs::write(&new, row(200.0)).unwrap();
        let err = perf_diff(&args(&[&o, &n, "--threshold", "25"])).unwrap_err();
        assert_eq!(err.exit_code(), 3);
        assert!(!err.is_usage());
        assert!(err.to_string().contains("REGRESSION"), "{err}");
        assert!(err.to_string().contains("wall_ms"), "{err}");
        // Usage and I/O failures stay distinguishable.
        assert_eq!(perf_diff(&args(&[&o])).unwrap_err().exit_code(), 2);
        assert_eq!(
            perf_diff(&args(&[&o, "/nonexistent/x.json"]))
                .unwrap_err()
                .exit_code(),
            1
        );
        std::fs::write(&new, "{}").unwrap();
        assert_eq!(perf_diff(&args(&[&o, &n])).unwrap_err().exit_code(), 2);
        std::fs::remove_file(&old).ok();
        std::fs::remove_file(&new).ok();
    }
}

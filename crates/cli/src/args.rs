//! Minimal dependency-free argument parsing: `--key value` flags and
//! positional arguments.

use std::collections::BTreeMap;

/// Parsed command-line arguments: positionals in order plus `--key value`
/// options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    positionals: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Errors produced while parsing or reading arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--key` was given without a value.
    MissingValue(String),
    /// A required option was not provided.
    MissingOption(String),
    /// A value failed to parse.
    Invalid {
        /// The option name.
        option: String,
        /// The rejected value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(k) => write!(f, "option --{k} requires a value"),
            ArgError::MissingOption(k) => write!(f, "missing required option --{k}"),
            ArgError::Invalid {
                option,
                value,
                expected,
            } => write!(
                f,
                "invalid value `{value}` for --{option}: expected {expected}"
            ),
        }
    }
}

impl std::error::Error for ArgError {}

/// Boolean flags recognized without values.
const BOOL_FLAGS: &[&str] = &[
    "no-stride-penalty",
    "compensate",
    "help",
    "json",
    "wall-clock",
    "exhaustive",
];

impl Args {
    /// Parses a raw argument list (excluding the program/subcommand names).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if BOOL_FLAGS.contains(&key) {
                    out.flags.push(key.to_string());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgError::MissingValue(key.to_string()))?;
                    out.options.insert(key.to_string(), value);
                }
            } else {
                out.positionals.push(arg);
            }
        }
        Ok(out)
    }

    /// Positional arguments in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// An optional string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A string option with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.get(name).unwrap_or(default)
    }

    /// A parsed numeric option with a default.
    pub fn get_parsed_or<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::Invalid {
                option: name.to_string(),
                value: raw.to_string(),
                expected,
            }),
        }
    }

    /// A comma-separated list of parsed values.
    pub fn get_list<T: std::str::FromStr>(
        &self,
        name: &str,
        expected: &'static str,
    ) -> Result<Option<Vec<T>>, ArgError> {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .split(',')
                .map(|piece| {
                    piece.trim().parse().map_err(|_| ArgError::Invalid {
                        option: name.to_string(),
                        value: piece.to_string(),
                        expected,
                    })
                })
                .collect::<Result<Vec<T>, ArgError>>()
                .map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Args {
        Args::parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn positionals_and_options() {
        let a = parse(&["vgg16", "--estimate", "moderate", "--ng", "27"]);
        assert_eq!(a.positionals(), &["vgg16".to_string()]);
        assert_eq!(a.get("estimate"), Some("moderate"));
        assert_eq!(a.get_parsed_or("ng", 9usize, "int").unwrap(), 27);
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&[]);
        assert_eq!(a.get_or("estimate", "conservative"), "conservative");
        assert_eq!(a.get_parsed_or("ng", 9usize, "int").unwrap(), 9);
    }

    #[test]
    fn bool_flags() {
        let a = parse(&["--no-stride-penalty", "--k2", "0.02"]);
        assert!(a.flag("no-stride-penalty"));
        assert!(!a.flag("compensate"));
        assert_eq!(a.get("k2"), Some("0.02"));
    }

    #[test]
    fn lists_parse() {
        let a = parse(&["--values", "3, 9,27"]);
        let v: Vec<usize> = a.get_list("values", "ints").unwrap().unwrap();
        assert_eq!(v, vec![3, 9, 27]);
    }

    #[test]
    fn missing_value_is_error() {
        let err = Args::parse(["--ng".to_string()]).unwrap_err();
        assert!(matches!(err, ArgError::MissingValue(k) if k == "ng"));
    }

    #[test]
    fn invalid_value_is_error() {
        let a = parse(&["--ng", "lots"]);
        let err = a
            .get_parsed_or("ng", 9usize, "a positive integer")
            .unwrap_err();
        assert!(err.to_string().contains("lots"));
    }
}

//! In-sim SLO burn-rate alerting on the DES virtual clock.
//!
//! The serving engine scores each request of an SLO-carrying class as a
//! *hit* or *miss* the instant the outcome becomes known (dispatch time
//! for completions — depth-first batch execution fixes the finish time
//! then — admission time for sheds). Misses burn the class's error
//! budget `1 − target`; the **burn rate** is the windowed miss fraction
//! divided by that budget, so a burn rate of 1.0 spends the budget
//! exactly over the SLO period and 14.4 spends a 30-day budget in two
//! days.
//!
//! Alerting follows the multi-window, multi-burn-rate recipe from the
//! Google SRE workbook: a rule fires only when **both** a short and a
//! long window exceed its factor (the short window gives fast reset, the
//! long one suppresses blips), and resolves when the short window drops
//! back under. The default [`AlertPolicy::standard`] pairs a fast
//! page-grade rule (5 min / 1 h at 14.4×) with a slow ticket-grade rule
//! (6 h / 3 d at 6×).
//!
//! Everything runs on the simulation's virtual clock in deterministic
//! event order: windows are ring buffers of fixed-width buckets advanced
//! by virtual time, and every fire/resolve transition is appended to an
//! [`AlertEvent`] log (capped, with a drop counter) that lands in the
//! serving report (schema v4) and the `--report-jsonl` stream. Runs are
//! byte-identical across hosts, thread counts, and interrupt/resume —
//! the full alert state is captured in `albireo.snapshot/v1` files.
//! None of this state folds into the run digest: alerting *observes* the
//! run, it never alters dispatch.

/// Ring-buffer buckets per window. 30 buckets keeps the trailing-window
/// approximation within ~3% of the exact interval while holding O(1)
/// memory per (class, window).
pub(crate) const WINDOW_BUCKETS: usize = 30;

/// Alert events retained per run; later transitions only bump
/// [`AlertBook::dropped`]. 1024 transitions is far beyond any sane run —
/// the cap exists so a pathological flapping config cannot grow the
/// report without bound.
pub(crate) const ALERT_EVENT_CAP: usize = 1024;

/// One burn-rate rule: a short and a long trailing window plus the
/// firing factor both must exceed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRule {
    /// Short (reset-speed) window, virtual seconds.
    pub short_s: f64,
    /// Long (confirmation) window, virtual seconds.
    pub long_s: f64,
    /// Burn-rate threshold: fire when both windows burn faster than
    /// `factor ×` the budget-neutral rate.
    pub factor: f64,
}

/// Which of the policy's two rules a transition belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertRule {
    /// The page-grade fast-burn rule.
    Fast,
    /// The ticket-grade slow-burn rule.
    Slow,
}

impl AlertRule {
    /// Stable lowercase label used in JSON and snapshots.
    pub fn label(&self) -> &'static str {
        match self {
            AlertRule::Fast => "fast",
            AlertRule::Slow => "slow",
        }
    }
}

/// The burn-rate alerting policy applied to every SLO-carrying class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlertPolicy {
    /// SLO objective as a fraction (0.999 = 99.9% of offered requests
    /// meet the class latency target). The error budget is `1 − target`.
    pub target: f64,
    /// Page-grade rule (default 5 min / 1 h at 14.4×).
    pub fast: BurnRule,
    /// Ticket-grade rule (default 6 h / 3 d at 6×).
    pub slow: BurnRule,
}

impl AlertPolicy {
    /// The SRE-workbook default: 99.9% objective, fast 5m/1h @ 14.4×,
    /// slow 6h/3d @ 6×.
    pub fn standard() -> AlertPolicy {
        AlertPolicy::with_target(0.999)
    }

    /// [`AlertPolicy::standard`] windows and factors with a different
    /// SLO objective.
    pub fn with_target(target: f64) -> AlertPolicy {
        assert!(
            (0.0..1.0).contains(&target),
            "SLO target must be in [0, 1), got {target}"
        );
        AlertPolicy {
            target,
            fast: BurnRule {
                short_s: 300.0,
                long_s: 3600.0,
                factor: 14.4,
            },
            slow: BurnRule {
                short_s: 21_600.0,
                long_s: 259_200.0,
                factor: 6.0,
            },
        }
    }

    /// One-line policy description carried in the serving report.
    pub fn label(&self) -> String {
        format!(
            "slo {} fast {}/{}x{} slow {}/{}x{}",
            self.target,
            self.fast.short_s,
            self.fast.long_s,
            self.fast.factor,
            self.slow.short_s,
            self.slow.long_s,
            self.slow.factor,
        )
    }
}

impl Default for AlertPolicy {
    fn default() -> AlertPolicy {
        AlertPolicy::standard()
    }
}

/// One fire or resolve transition, in virtual-time order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlertEvent {
    /// Class index into the workload's class table.
    pub class: usize,
    /// Which rule transitioned.
    pub rule: AlertRule,
    /// `true` = fired, `false` = resolved.
    pub fire: bool,
    /// Virtual instant of the transition, s.
    pub at_s: f64,
    /// Short-window burn rate at the transition.
    pub burn_short: f64,
    /// Long-window burn rate at the transition.
    pub burn_long: f64,
}

/// A trailing-window hit/miss counter: `WINDOW_BUCKETS` ring buckets of
/// width `window_s / WINDOW_BUCKETS` advanced by virtual time.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WindowCounts {
    /// Bucket width, s (derived from the policy; not serialized).
    bucket_s: f64,
    /// Absolute index of the newest bucket (`floor(at_s / bucket_s)`).
    pub(crate) cur: u64,
    /// Per-slot observation counts (`slot = index % WINDOW_BUCKETS`).
    pub(crate) total: Vec<u64>,
    /// Per-slot miss counts.
    pub(crate) miss: Vec<u64>,
}

impl WindowCounts {
    pub(crate) fn new(window_s: f64) -> WindowCounts {
        debug_assert!(window_s > 0.0 && window_s.is_finite());
        WindowCounts {
            bucket_s: window_s / WINDOW_BUCKETS as f64,
            cur: 0,
            total: vec![0; WINDOW_BUCKETS],
            miss: vec![0; WINDOW_BUCKETS],
        }
    }

    /// Rolls the ring forward to the bucket containing `at_s`, zeroing
    /// every bucket the clock skipped. Observation instants are
    /// nondecreasing (DES event order), so the ring never rolls back.
    fn advance(&mut self, at_s: f64) {
        let idx = (at_s / self.bucket_s) as u64;
        if idx <= self.cur {
            return;
        }
        let steps = (idx - self.cur).min(WINDOW_BUCKETS as u64);
        for k in 1..=steps {
            let slot = ((self.cur + k) % WINDOW_BUCKETS as u64) as usize;
            self.total[slot] = 0;
            self.miss[slot] = 0;
        }
        self.cur = idx;
    }

    pub(crate) fn observe(&mut self, at_s: f64, miss: bool) {
        self.advance(at_s);
        let slot = (self.cur % WINDOW_BUCKETS as u64) as usize;
        self.total[slot] += 1;
        if miss {
            self.miss[slot] += 1;
        }
    }

    /// Miss fraction over the trailing window (0 when nothing observed).
    pub(crate) fn miss_fraction(&self) -> f64 {
        let total: u64 = self.total.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let miss: u64 = self.miss.iter().sum();
        miss as f64 / total as f64
    }
}

/// Per-class alert state: four trailing windows and the firing latch of
/// each rule.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ClassAlertState {
    pub(crate) fast_short: WindowCounts,
    pub(crate) fast_long: WindowCounts,
    pub(crate) slow_short: WindowCounts,
    pub(crate) slow_long: WindowCounts,
    pub(crate) fast_firing: bool,
    pub(crate) slow_firing: bool,
}

impl ClassAlertState {
    pub(crate) fn new(policy: &AlertPolicy) -> ClassAlertState {
        ClassAlertState {
            fast_short: WindowCounts::new(policy.fast.short_s),
            fast_long: WindowCounts::new(policy.fast.long_s),
            slow_short: WindowCounts::new(policy.slow.short_s),
            slow_long: WindowCounts::new(policy.slow.long_s),
            fast_firing: false,
            slow_firing: false,
        }
    }
}

/// The run's alerting ledger: policy, per-class window state (only for
/// classes with an SLO), and the capped transition log.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AlertBook {
    pub(crate) policy: AlertPolicy,
    /// Aligned with the class table; `None` for best-effort classes.
    /// Empty = alerting disabled (no class carries an SLO).
    pub(crate) states: Vec<Option<ClassAlertState>>,
    pub(crate) events: Vec<AlertEvent>,
    pub(crate) dropped: u64,
}

impl AlertBook {
    /// A book that tracks nothing (classless runs, parsed placeholders).
    pub(crate) fn disabled() -> AlertBook {
        AlertBook {
            policy: AlertPolicy::standard(),
            states: Vec::new(),
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// Builds the book for a run's class table: one state per
    /// SLO-carrying class, disabled entirely when there is none.
    pub(crate) fn for_classes(policy: AlertPolicy, slos: &[Option<f64>]) -> AlertBook {
        if slos.iter().all(|s| s.is_none()) {
            return AlertBook::disabled();
        }
        AlertBook {
            policy,
            states: slos
                .iter()
                .map(|s| s.map(|_| ClassAlertState::new(&policy)))
                .collect(),
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// Whether any class is being tracked.
    pub(crate) fn is_active(&self) -> bool {
        !self.states.is_empty()
    }

    /// Folds one SLO outcome into the class's windows and evaluates both
    /// rules, appending any fire/resolve transition. Called in DES event
    /// order with nondecreasing `at_s`.
    pub(crate) fn observe(&mut self, class: usize, at_s: f64, miss: bool) {
        let policy = self.policy;
        let Some(Some(st)) = self.states.get_mut(class) else {
            return;
        };
        st.fast_short.observe(at_s, miss);
        st.fast_long.observe(at_s, miss);
        st.slow_short.observe(at_s, miss);
        st.slow_long.observe(at_s, miss);
        let budget = 1.0 - policy.target;
        debug_assert!(budget > 0.0);
        let mut transitions: Vec<AlertEvent> = Vec::new();
        for (rule, which) in [
            (policy.fast, AlertRule::Fast),
            (policy.slow, AlertRule::Slow),
        ] {
            let (short, long, firing) = match which {
                AlertRule::Fast => (&st.fast_short, &st.fast_long, &mut st.fast_firing),
                AlertRule::Slow => (&st.slow_short, &st.slow_long, &mut st.slow_firing),
            };
            let burn_short = short.miss_fraction() / budget;
            let burn_long = long.miss_fraction() / budget;
            if !*firing && burn_short >= rule.factor && burn_long >= rule.factor {
                *firing = true;
                transitions.push(AlertEvent {
                    class,
                    rule: which,
                    fire: true,
                    at_s,
                    burn_short,
                    burn_long,
                });
            } else if *firing && burn_short < rule.factor {
                *firing = false;
                transitions.push(AlertEvent {
                    class,
                    rule: which,
                    fire: false,
                    at_s,
                    burn_short,
                    burn_long,
                });
            }
        }
        for ev in transitions {
            self.push_event(ev);
        }
    }

    fn push_event(&mut self, ev: AlertEvent) {
        if self.events.len() < ALERT_EVENT_CAP {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Fire-transition count for one class.
    pub(crate) fn fired(&self, class: usize) -> u64 {
        self.events
            .iter()
            .filter(|e| e.class == class && e.fire)
            .count() as u64
    }

    /// Whether either rule is still firing for `class`.
    pub(crate) fn active(&self, class: usize) -> bool {
        self.states
            .get(class)
            .and_then(|s| s.as_ref())
            .is_some_and(|s| s.fast_firing || s.slow_firing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_roll_forward_and_forget() {
        let mut w = WindowCounts::new(300.0); // 10 s buckets
        for i in 0..10 {
            w.observe(i as f64, true);
        }
        assert_eq!(w.miss_fraction(), 1.0);
        // 400 s later every bucket has rolled out of the window.
        w.observe(450.0, false);
        assert_eq!(w.miss_fraction(), 0.0);
    }

    #[test]
    fn partial_roll_keeps_recent_buckets() {
        let mut w = WindowCounts::new(300.0);
        w.observe(0.0, true);
        w.observe(0.0, false);
        // 150 s on: the first bucket is still inside the 300 s window.
        w.observe(150.0, false);
        assert!((w.miss_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fires_only_when_both_windows_burn() {
        let policy = AlertPolicy::with_target(0.99); // budget 0.01
        let mut book = AlertBook::for_classes(policy, &[Some(5.0)]);
        // Hits spread over 50 min, then a short miss burst: the 5 min
        // short windows burn hot but the long windows stay diluted, so
        // nothing fires.
        for i in 0..3000 {
            book.observe(0, i as f64, false);
        }
        for i in 0..50 {
            book.observe(0, 3000.0 + i as f64, true);
        }
        assert!(book.events.is_empty(), "long windows must gate the alert");
        // Sustained misses eventually push a long window over its
        // factor and fire; a stretch of hits then drains the short
        // window and resolves.
        let mut t = 3050.0;
        while !book.active(0) {
            book.observe(0, t, true);
            t += 1.0;
        }
        assert_eq!(book.fired(0), 1);
        let first = book.events[0];
        assert!(first.fire);
        let factor = match first.rule {
            AlertRule::Fast => policy.fast.factor,
            AlertRule::Slow => policy.slow.factor,
        };
        assert!(first.burn_short >= factor && first.burn_long >= factor);
        while book.active(0) {
            book.observe(0, t, false);
            t += 1.0;
        }
        let last = *book.events.last().unwrap();
        assert!(!last.fire, "hits must resolve the alert");
        let factor = match last.rule {
            AlertRule::Fast => policy.fast.factor,
            AlertRule::Slow => policy.slow.factor,
        };
        assert!(last.burn_short < factor);
    }

    #[test]
    fn best_effort_classes_are_ignored() {
        let mut book = AlertBook::for_classes(AlertPolicy::standard(), &[None, Some(5.0)]);
        assert!(book.is_active());
        book.observe(0, 1.0, true); // best-effort: no state, no panic
        assert!(book.states[0].is_none());
        assert_eq!(book.fired(0), 0);
        let none = AlertBook::for_classes(AlertPolicy::standard(), &[None, None]);
        assert!(!none.is_active(), "no SLO anywhere disables the book");
    }

    #[test]
    fn event_log_caps_and_counts_drops() {
        let mut book = AlertBook::disabled();
        for i in 0..(ALERT_EVENT_CAP + 5) {
            book.push_event(AlertEvent {
                class: 0,
                rule: AlertRule::Fast,
                fire: i % 2 == 0,
                at_s: i as f64,
                burn_short: 20.0,
                burn_long: 20.0,
            });
        }
        assert_eq!(book.events.len(), ALERT_EVENT_CAP);
        assert_eq!(book.dropped, 5);
    }

    #[test]
    fn policy_label_is_stable() {
        assert_eq!(
            AlertPolicy::standard().label(),
            "slo 0.999 fast 300/3600x14.4 slow 21600/259200x6"
        );
    }
}

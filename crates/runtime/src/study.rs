//! The serving study: a (fleet × arrival rate × batching policy) sweep
//! with replicated runs, fanned out through `albireo-parallel`.
//!
//! Each simulation run is single-threaded and pure (see [`crate::sim`]);
//! parallelism lives entirely here, as a deterministic `map_indexed` over
//! the flattened `(cell, replica)` grid. Replica seeds are derived with
//! [`split_seed`]`(base, `[`stream_id`]`(SERVE_PASS, cell, replica))`, a
//! function of the run's *coordinates* — never of which thread executes
//! it — so the whole study is bit-identical at any thread count.

use crate::fleet::FleetConfig;
use crate::policy::{AdmissionControl, BatchPolicy};
use crate::report::ServiceReport;
use crate::sim::{simulate, ServeConfig};
use crate::workload::{ArrivalProcess, Workload};
use albireo_core::report::json;
use albireo_nn::zoo;
use albireo_parallel::{split_seed, stream_id, Parallelism};

/// Stream-id pass tag for serving replica seeds (shared by
/// [`replicate`] and [`run_serving_study`]).
pub const SERVE_PASS: u64 = 0xA1B;

/// Runs `replicas` seeded copies of one configuration in parallel.
///
/// Replica 0 uses `cfg.seed` itself (so a one-replica call reproduces the
/// plain [`simulate`] run byte-for-byte); replica `r > 0` uses the
/// derived seed `split_seed(cfg.seed, stream_id(SERVE_PASS, 0, r))`.
pub fn replicate(
    fleet: &FleetConfig,
    cfg: &ServeConfig,
    replicas: usize,
    par: Parallelism,
) -> Vec<ServiceReport> {
    par.map_indexed(replicas, |r| {
        let mut run = cfg.clone();
        if r > 0 {
            run.seed = split_seed(cfg.seed, stream_id(SERVE_PASS, 0, r as u64));
        }
        simulate(fleet, &run)
    })
}

/// What the serving study sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyOptions {
    /// Fleets to serve on.
    pub fleets: Vec<FleetConfig>,
    /// Mean Poisson arrival rates, requests/s.
    pub rates_rps: Vec<f64>,
    /// Batching policies.
    pub policies: Vec<BatchPolicy>,
    /// Network mix (index, weight) offered to every cell.
    pub mix: Vec<(usize, f64)>,
    /// Requests offered per run.
    pub requests: usize,
    /// Seeded replicas per cell.
    pub replicas: usize,
    /// Base seed replica seeds derive from.
    pub base_seed: u64,
    /// Queue capacity shared by every cell.
    pub admission: AdmissionControl,
}

impl StudyOptions {
    /// The pinned grid behind `results/golden_serving_metrics.csv` and
    /// `BENCH_serving.json`: two fleets (the paper pair and a lone
    /// Albireo-9), two offered rates bracketing the lone chip's capacity,
    /// three policies, two replicas, AlexNet/VGG16 mix, seed 42.
    pub fn golden() -> StudyOptions {
        StudyOptions {
            fleets: vec![
                FleetConfig::paper_pair(),
                FleetConfig::parse("albireo_9:C", zoo::all_benchmarks())
                    .expect("static fleet spec parses"),
            ],
            rates_rps: vec![1000.0, 4000.0],
            policies: vec![
                BatchPolicy::Immediate,
                BatchPolicy::SizeN { size: 4 },
                BatchPolicy::Deadline {
                    max_wait_s: 200e-6,
                    max_size: 8,
                },
            ],
            mix: vec![(0, 1.0), (1, 1.0)],
            requests: 300,
            replicas: 2,
            base_seed: 42,
            admission: AdmissionControl::default(),
        }
    }

    /// The mixed-backend grid behind the heterogeneous rows of
    /// `BENCH_serving.json`: an Albireo-27 flanked by the DEAP-CNN and
    /// PIXEL photonic baselines, and an Albireo-9 paired with the
    /// reported Eyeriss (which only serves its published networks —
    /// exercising support-aware dispatch), over the AlexNet/VGG16 mix.
    pub fn heterogeneous() -> StudyOptions {
        StudyOptions {
            fleets: vec![
                FleetConfig::parse("albireo_27:C, deap:C, pixel:C", zoo::all_benchmarks())
                    .expect("static fleet spec parses"),
                FleetConfig::parse("albireo_9:C, eyeriss", zoo::all_benchmarks())
                    .expect("static fleet spec parses"),
            ],
            rates_rps: vec![1000.0],
            policies: vec![BatchPolicy::Immediate, BatchPolicy::SizeN { size: 4 }],
            mix: vec![(0, 1.0), (1, 1.0)],
            requests: 200,
            replicas: 2,
            base_seed: 42,
            admission: AdmissionControl::default(),
        }
    }

    /// Cells in the sweep (fleet × rate × policy).
    pub fn cells(&self) -> usize {
        self.fleets.len() * self.rates_rps.len() * self.policies.len()
    }
}

/// One run of the study: its cell coordinates plus the full report.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyRun {
    /// Flattened cell index.
    pub cell: usize,
    /// Replica index within the cell.
    pub replica: usize,
    /// The run's service report.
    pub report: ServiceReport,
}

/// The study's results, in deterministic `(cell, replica)` order.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingStudyReport {
    /// Replicas per cell.
    pub replicas: usize,
    /// All runs.
    pub runs: Vec<StudyRun>,
}

impl ServingStudyReport {
    /// Order-sensitive digest over every run's digest — one value that
    /// certifies the entire study reproduced.
    pub fn combined_digest(&self) -> u64 {
        self.runs.iter().fold(0xC0FF_EE00u64, |acc, r| {
            acc.rotate_left(13) ^ r.report.digest()
        })
    }

    /// The combined digest as fixed-width hex.
    pub fn combined_digest_hex(&self) -> String {
        format!("{:016x}", self.combined_digest())
    }

    /// The study CSV: a `replica` column plus one [`ServiceReport`] row
    /// per run.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("replica,");
        out.push_str(ServiceReport::csv_header());
        out.push('\n');
        for run in &self.runs {
            out.push_str(&format!("{},{}\n", run.replica, run.report.csv_row()));
        }
        out
    }

    /// Hand-rolled JSON for `BENCH_serving.json` (schema
    /// `albireo.bench.serving_study/v1`, documented in DESIGN.md §8).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"schema\": \"albireo.bench.serving_study/v1\",\n");
        s.push_str(&format!("  \"replicas\": {},\n", self.replicas));
        s.push_str("  \"runs\": [\n");
        for (i, run) in self.runs.iter().enumerate() {
            let r = &run.report;
            s.push_str(&format!(
                "    {{\"fleet\": \"{}\", \"policy\": \"{}\", \"rate_rps\": {:.3}, \
                 \"replica\": {}, \"seed\": {}, \"completed\": {}, \"shed\": {}, \
                 \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}, \"p999_ms\": {}, \
                 \"goodput_rps\": {}, \"energy_per_request_mj\": {}, \
                 \"mean_batch_size\": {}, \"digest\": \"{}\"}}{}\n",
                r.fleet_label,
                r.policy_label,
                r.offered_rate_rps,
                run.replica,
                r.seed,
                r.completed,
                r.shed,
                json::num(r.p50_ms),
                json::num(r.p95_ms),
                json::num(r.p99_ms),
                json::num(r.p999_ms),
                json::num(r.goodput_rps),
                json::num(r.energy_per_request_j * 1e3),
                json::num(r.mean_batch_size),
                r.digest_hex(),
                json::sep(i, self.runs.len())
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"combined_digest\": \"{}\"\n",
            self.combined_digest_hex()
        ));
        s.push_str("}\n");
        s
    }
}

/// Runs the full serving study under `par`. Bit-identical at any thread
/// count (see module docs).
pub fn run_serving_study(options: &StudyOptions, par: Parallelism) -> ServingStudyReport {
    assert!(options.replicas > 0, "study needs at least one replica");
    let cells: Vec<(usize, f64, BatchPolicy)> = options
        .fleets
        .iter()
        .enumerate()
        .flat_map(|(fi, _)| {
            options.rates_rps.iter().flat_map(move |&rate| {
                options
                    .policies
                    .iter()
                    .map(move |&policy| (fi, rate, policy))
            })
        })
        .collect();
    let total = cells.len() * options.replicas;
    let runs = par.map_indexed(total, |i| {
        let cell = i / options.replicas;
        let replica = i % options.replicas;
        let (fleet_idx, rate, policy) = cells[cell];
        let cfg = ServeConfig {
            workload: Workload {
                process: ArrivalProcess::Poisson { rate_rps: rate },
                mix: options.mix.clone(),
                classes: Vec::new(),
            },
            requests: options.requests,
            seed: split_seed(
                options.base_seed,
                stream_id(SERVE_PASS, cell as u64, replica as u64),
            ),
            policy,
            admission: options.admission,
            faults: crate::fault::FaultScenario::none(),
            record_cap: usize::MAX,
            autoscale: crate::autoscale::AutoscalePolicy::None,
            alert: crate::alerts::AlertPolicy::standard(),
        };
        StudyRun {
            cell,
            replica,
            report: simulate(&options.fleets[fleet_idx], &cfg),
        }
    });
    ServingStudyReport {
        replicas: options.replicas,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_options() -> StudyOptions {
        let mut o = StudyOptions::golden();
        o.fleets.truncate(1);
        o.rates_rps = vec![2000.0];
        o.requests = 120;
        o
    }

    #[test]
    fn study_is_deterministic_at_any_thread_count() {
        let options = quick_options();
        let serial = run_serving_study(&options, Parallelism::serial());
        let wide = run_serving_study(&options, Parallelism::with_threads(8));
        assert_eq!(serial, wide);
        assert_eq!(serial.combined_digest(), wide.combined_digest());
        assert_eq!(serial.runs.len(), options.cells() * options.replicas);
    }

    #[test]
    fn replicas_draw_distinct_workloads() {
        let options = quick_options();
        let study = run_serving_study(&options, Parallelism::serial());
        let a = &study.runs[0];
        let b = &study.runs[1];
        assert_eq!(a.cell, b.cell);
        assert_ne!(a.report.seed, b.report.seed);
        assert_ne!(a.report.digest(), b.report.digest());
    }

    #[test]
    fn replicate_preserves_the_base_run() {
        let fleet = FleetConfig::paper_pair();
        let cfg = ServeConfig::poisson(2000.0, 100, 5, 0);
        let base = simulate(&fleet, &cfg);
        let reps = replicate(&fleet, &cfg, 3, Parallelism::with_threads(4));
        assert_eq!(reps.len(), 3);
        assert_eq!(reps[0], base, "replica 0 is the base run");
        assert_ne!(reps[1].digest(), reps[0].digest());
        assert_ne!(reps[2].digest(), reps[1].digest());
    }

    #[test]
    fn heterogeneous_grid_is_deterministic_and_mixed() {
        let mut options = StudyOptions::heterogeneous();
        options.requests = 80;
        let serial = run_serving_study(&options, Parallelism::serial());
        let wide = run_serving_study(&options, Parallelism::with_threads(8));
        assert_eq!(serial, wide);
        assert_eq!(serial.runs.len(), options.cells() * options.replicas);
        let labels: Vec<&str> = serial
            .runs
            .iter()
            .map(|r| r.report.fleet_label.as_str())
            .collect();
        assert!(labels.contains(&"albireo_27_C+deap_C+pixel_C"));
        assert!(labels.contains(&"albireo_9_C+eyeriss"));
        for run in &serial.runs {
            assert!(run.report.completed > 0, "every cell must make progress");
        }
    }

    #[test]
    fn csv_and_json_cover_every_run() {
        let options = quick_options();
        let study = run_serving_study(&options, Parallelism::serial());
        let csv = study.to_csv();
        assert_eq!(csv.lines().count(), study.runs.len() + 1);
        assert!(csv.starts_with("replica,fleet,"));
        let json = study.to_json();
        assert!(json.contains("albireo.bench.serving_study/v1"));
        assert!(json.contains(&study.combined_digest_hex()));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}

//! Seeded request-stream generation: the arrival side of the serving
//! simulator.
//!
//! A [`Workload`] turns `(seed, request count)` into a deterministic
//! request stream. [`Workload::stream`] yields requests **lazily** — one
//! at a time, in arrival order, with O(1) state — so the simulator can
//! serve 10⁶–10⁷ requests without ever materializing them;
//! [`Workload::generate`] is the eager wrapper that collects the same
//! stream into a vector (it produces byte-identical requests: the two
//! paths share one generator). Six arrival processes are provided:
//!
//! * **Poisson** — i.i.d. exponential interarrival gaps at a fixed mean
//!   rate, the standard open-loop service model;
//! * **Bursty** — a two-phase modulated Poisson process (an MMPP-2): the
//!   generator alternates between an *on* phase at `burst × rate` and an
//!   *off* phase at a compensating low rate, so the long-run mean rate is
//!   preserved while arrivals cluster — the tail-latency stressor;
//! * **Diurnal** — a sinusoidally rate-modulated Poisson process
//!   (thinning / Lewis–Shedler sampling against the peak rate):
//!   `rate(t) = rate × (1 + amplitude·sin(2πt/period))`, the classic
//!   daily traffic curve compressed onto the simulation clock;
//! * **FlashCrowd** — baseline Poisson until `at_s`, then an
//!   exponentially decaying overload
//!   `rate(t) = rate × (1 + (spike−1)·e^{−(t−at)/decay})` — the
//!   breaking-news shape that stresses admission control;
//! * **Trace** — explicit in-memory arrival instants, for replaying
//!   short measured traffic snippets;
//! * **TraceFile** — bounded-memory replay of a JSONL trace from disk:
//!   one object per line, `{"arrival_s": 0.0123}` with optional
//!   `"network"` and `"class"` members overriding the mix/class draw.
//!   Lines must be sorted by `arrival_s` (the reader streams; it cannot
//!   sort), blank lines are skipped, and malformed lines panic with the
//!   file/line coordinates.
//!
//! Requests optionally carry a **class** — a multi-tenant label drawn
//! from [`Workload::classes`] ([`ClassSpec`]: name, traffic weight,
//! optional SLO target) — so reports can break latency and SLO
//! attainment out per tenant. With no classes configured every request
//! is class 0 and no class randomness is consumed.
//!
//! Determinism contract: generation draws from a `StdRng` seeded with
//! `split_seed(seed, stream)` per concern (one stream for gaps, one for
//! network choice, one for class choice), so a workload is a pure
//! function of `(spec, seed)` — independent of thread count, host, call
//! site, or whether the stream is consumed lazily or collected.

use albireo_parallel::{split_seed, stream_id};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs::File;
use std::io::{BufRead, BufReader};

/// Stream-id pass tag for interarrival-gap draws.
const GAP_PASS: u64 = 0x5E1;
/// Stream-id pass tag for network-mix draws.
const MIX_PASS: u64 = 0x5E2;
/// Stream-id pass tag for request-class draws.
const CLASS_PASS: u64 = 0x5E3;

/// One inference request offered to the service.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Monotone request id (arrival order).
    pub id: u64,
    /// Index into the workload's network mix.
    pub network: usize,
    /// Arrival instant on the virtual clock, s.
    pub arrival_s: f64,
    /// Index into the workload's class table (0 when no classes are
    /// configured).
    pub class: usize,
}

/// A multi-tenant request class: a label, its share of the traffic, and
/// an optional latency SLO the report scores attainment against.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSpec {
    /// Tenant label (e.g. `interactive`, `batch`).
    pub name: String,
    /// Traffic weight (need not sum to one across classes).
    pub weight: f64,
    /// End-to-end latency target, ms; `None` = best-effort.
    pub slo_ms: Option<f64>,
}

impl ClassSpec {
    /// A named class with `weight` share and no SLO.
    pub fn best_effort(name: &str, weight: f64) -> ClassSpec {
        ClassSpec {
            name: name.to_string(),
            weight,
            slo_ms: None,
        }
    }

    /// A named class with `weight` share and a latency SLO in ms.
    pub fn with_slo(name: &str, weight: f64, slo_ms: f64) -> ClassSpec {
        ClassSpec {
            name: name.to_string(),
            weight,
            slo_ms: Some(slo_ms),
        }
    }

    /// Parses a class list `NAME:WEIGHT[:SLO_MS],...` (the CLI
    /// `--classes` grammar). Entries without an SLO inherit
    /// `default_slo_ms`. Duplicate class names are rejected — per-class
    /// attainment reports would silently merge tenants otherwise.
    pub fn parse_list(list: &str, default_slo_ms: Option<f64>) -> Result<Vec<ClassSpec>, String> {
        let mut classes: Vec<ClassSpec> = Vec::new();
        for entry in list.split(',').filter(|e| !e.trim().is_empty()) {
            let mut parts = entry.trim().splitn(3, ':');
            let name = parts.next().unwrap_or("").trim();
            if name.is_empty() {
                return Err(format!("class entry `{entry}` needs NAME:WEIGHT[:SLO_MS]"));
            }
            if classes.iter().any(|c| c.name == name) {
                return Err(format!(
                    "duplicate class name `{name}` (each tenant class may appear once)"
                ));
            }
            let weight: f64 = parts
                .next()
                .ok_or_else(|| format!("class entry `{entry}` needs a weight"))?
                .trim()
                .parse()
                .map_err(|_| format!("bad weight in `{entry}`"))?;
            if !(weight.is_finite() && weight > 0.0) {
                return Err(format!("class weight must be positive in `{entry}`"));
            }
            let slo_ms = match parts.next() {
                Some(s) => {
                    let slo: f64 = s
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad SLO in `{entry}`"))?;
                    if !(slo.is_finite() && slo > 0.0) {
                        return Err(format!("class SLO must be positive in `{entry}`"));
                    }
                    Some(slo)
                }
                None => default_slo_ms,
            };
            classes.push(ClassSpec {
                name: name.to_string(),
                weight,
                slo_ms,
            });
        }
        if classes.is_empty() {
            return Err("class list names no class".to_string());
        }
        Ok(classes)
    }
}

/// The arrival process shaping request interarrival times.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Exponential interarrival gaps at `rate_rps` requests per second.
    Poisson {
        /// Mean arrival rate, requests/s.
        rate_rps: f64,
    },
    /// Two-phase modulated Poisson: `on_s` seconds at `burst × rate_rps`,
    /// then `off_s` seconds at the compensating low rate that keeps the
    /// long-run mean at `rate_rps`.
    Bursty {
        /// Long-run mean arrival rate, requests/s.
        rate_rps: f64,
        /// On-phase rate multiplier (> 1).
        burst: f64,
        /// On-phase duration, s.
        on_s: f64,
        /// Off-phase duration, s.
        off_s: f64,
    },
    /// Sinusoidal rate modulation
    /// `rate(t) = rate_rps × (1 + amplitude·sin(2πt/period_s))`, sampled
    /// by thinning against the peak rate. The long-run mean stays
    /// `rate_rps`.
    Diurnal {
        /// Long-run mean arrival rate, requests/s.
        rate_rps: f64,
        /// Peak-to-mean swing, in `(0, 1]`.
        amplitude: f64,
        /// Cycle period, s (a "day" on the simulation clock).
        period_s: f64,
    },
    /// Baseline Poisson until `at_s`, then a spike decaying as
    /// `rate(t) = rate_rps × (1 + (spike−1)·e^{−(t−at_s)/decay_s})`.
    FlashCrowd {
        /// Baseline arrival rate, requests/s.
        rate_rps: f64,
        /// Instantaneous rate multiplier at the spike front (> 1).
        spike: f64,
        /// Spike onset, s.
        at_s: f64,
        /// Exponential decay constant of the overload, s.
        decay_s: f64,
    },
    /// Explicit arrival instants (need not be sorted; they are sorted
    /// when the stream opens).
    Trace {
        /// Arrival times, s.
        times_s: Vec<f64>,
    },
    /// Bounded-memory JSONL replay from disk (see module docs for the
    /// line format). Lines must already be sorted by `arrival_s`.
    TraceFile {
        /// Path to the JSONL trace.
        path: String,
    },
}

impl ArrivalProcess {
    /// The long-run mean arrival rate this process aims at, requests/s
    /// (for in-memory traces, the empirical rate over the trace span;
    /// for on-disk traces, 0.0 — unknown until replayed).
    pub fn mean_rate_rps(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_rps } => *rate_rps,
            ArrivalProcess::Bursty { rate_rps, .. } => *rate_rps,
            ArrivalProcess::Diurnal { rate_rps, .. } => *rate_rps,
            ArrivalProcess::FlashCrowd { rate_rps, .. } => *rate_rps,
            ArrivalProcess::Trace { times_s } => {
                let span = times_s
                    .iter()
                    .cloned()
                    .fold(0.0f64, f64::max)
                    .max(f64::MIN_POSITIVE);
                times_s.len() as f64 / span
            }
            ArrivalProcess::TraceFile { .. } => 0.0,
        }
    }

    /// A short label for reports (`poisson`, `bursty`, `diurnal`,
    /// `flash`, `trace`, `trace_file`).
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
            ArrivalProcess::Diurnal { .. } => "diurnal",
            ArrivalProcess::FlashCrowd { .. } => "flash",
            ArrivalProcess::Trace { .. } => "trace",
            ArrivalProcess::TraceFile { .. } => "trace_file",
        }
    }
}

/// A request stream specification: the arrival process, the network mix
/// requests draw from, and the (optional) multi-tenant class table.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The arrival process.
    pub process: ArrivalProcess,
    /// Weighted network mix: `(network index, weight)`. Weights need not
    /// sum to one; they are normalized at draw time. Network indices refer
    /// to the fleet's model table.
    pub mix: Vec<(usize, f64)>,
    /// Multi-tenant request classes; empty = one anonymous class and no
    /// class randomness consumed (so class-free configs keep their
    /// historical digests).
    pub classes: Vec<ClassSpec>,
}

impl Workload {
    /// A single-network Poisson workload — the common case.
    pub fn poisson(rate_rps: f64, network: usize) -> Workload {
        Workload {
            process: ArrivalProcess::Poisson { rate_rps },
            mix: vec![(network, 1.0)],
            classes: Vec::new(),
        }
    }

    /// This workload with a class table.
    pub fn with_classes(mut self, classes: Vec<ClassSpec>) -> Workload {
        self.classes = classes;
        self
    }

    /// Opens the lazy request stream: at most `n` requests in arrival
    /// order, deterministically from `seed`, with O(1) generator state
    /// (plus the in-memory trace, if that process is used).
    pub fn stream(&self, n: usize, seed: u64) -> RequestStream {
        assert!(
            !self.mix.is_empty() && self.mix.iter().all(|&(_, w)| w >= 0.0),
            "network mix must be non-empty with non-negative weights"
        );
        let total_weight: f64 = self.mix.iter().map(|&(_, w)| w).sum();
        assert!(total_weight > 0.0, "network mix weights must not all be 0");
        let class_weight: f64 = self.classes.iter().map(|c| c.weight).sum();
        assert!(
            self.classes.is_empty()
                || (class_weight > 0.0 && self.classes.iter().all(|c| c.weight >= 0.0)),
            "class weights must be non-negative and not all 0"
        );
        let source = match &self.process {
            ArrivalProcess::Poisson { rate_rps } => {
                assert!(*rate_rps > 0.0, "arrival rate must be positive");
                Source::Poisson { rate: *rate_rps }
            }
            ArrivalProcess::Bursty {
                rate_rps,
                burst,
                on_s,
                off_s,
            } => {
                assert!(*rate_rps > 0.0, "arrival rate must be positive");
                assert!(*burst > 1.0, "burst factor must exceed 1");
                assert!(
                    *on_s > 0.0 && *off_s > 0.0,
                    "phase durations must be positive"
                );
                // Low rate chosen so the duty-cycle-weighted mean is rate_rps;
                // clamped at a trickle so the off phase still terminates.
                let period = on_s + off_s;
                let low =
                    ((rate_rps * period - burst * rate_rps * on_s) / off_s).max(rate_rps * 1e-3);
                Source::Bursty {
                    rate: *rate_rps,
                    burst: *burst,
                    on_s: *on_s,
                    off_s: *off_s,
                    low,
                    in_on: true,
                    phase_end: *on_s,
                }
            }
            ArrivalProcess::Diurnal {
                rate_rps,
                amplitude,
                period_s,
            } => {
                assert!(*rate_rps > 0.0, "arrival rate must be positive");
                assert!(
                    *amplitude > 0.0 && *amplitude <= 1.0,
                    "diurnal amplitude must be in (0, 1]"
                );
                assert!(*period_s > 0.0, "diurnal period must be positive");
                Source::Diurnal {
                    rate: *rate_rps,
                    amplitude: *amplitude,
                    period_s: *period_s,
                }
            }
            ArrivalProcess::FlashCrowd {
                rate_rps,
                spike,
                at_s,
                decay_s,
            } => {
                assert!(*rate_rps > 0.0, "arrival rate must be positive");
                assert!(*spike > 1.0, "spike factor must exceed 1");
                assert!(*at_s >= 0.0, "spike onset must be non-negative");
                assert!(*decay_s > 0.0, "spike decay must be positive");
                Source::Flash {
                    rate: *rate_rps,
                    spike: *spike,
                    at_s: *at_s,
                    decay_s: *decay_s,
                }
            }
            ArrivalProcess::Trace { times_s } => {
                let mut t: Vec<f64> = times_s.iter().take(n).cloned().collect();
                t.sort_by(|a, b| a.partial_cmp(b).expect("trace times must be finite"));
                Source::Trace {
                    times: t.into_iter(),
                }
            }
            ArrivalProcess::TraceFile { path } => {
                let file = File::open(path)
                    .unwrap_or_else(|e| panic!("cannot open arrival trace {path}: {e}"));
                Source::TraceFile {
                    lines: BufReader::new(file).lines(),
                    path: path.clone(),
                    line_no: 0,
                    last_bits: 0,
                }
            }
        };
        RequestStream {
            source,
            t: 0.0,
            gap_rng: StdRng::seed_from_u64(split_seed(seed, stream_id(GAP_PASS, 0, 0))),
            mix_rng: StdRng::seed_from_u64(split_seed(seed, stream_id(MIX_PASS, 0, 0))),
            class_rng: StdRng::seed_from_u64(split_seed(seed, stream_id(CLASS_PASS, 0, 0))),
            mix: self.mix.clone(),
            total_weight,
            classes: self.classes.clone(),
            class_weight,
            remaining: n,
            next_id: 0,
        }
    }

    /// Generates the first `n` requests of the stream, deterministically
    /// from `seed` — [`Workload::stream`] collected eagerly. Returned
    /// requests are sorted by arrival time; ids are assigned in arrival
    /// order.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Request> {
        self.stream(n, seed).collect()
    }
}

/// Per-process generator state for [`RequestStream`].
#[derive(Debug)]
enum Source {
    Poisson {
        rate: f64,
    },
    Bursty {
        rate: f64,
        burst: f64,
        on_s: f64,
        off_s: f64,
        low: f64,
        in_on: bool,
        phase_end: f64,
    },
    Diurnal {
        rate: f64,
        amplitude: f64,
        period_s: f64,
    },
    Flash {
        rate: f64,
        spike: f64,
        at_s: f64,
        decay_s: f64,
    },
    Trace {
        times: std::vec::IntoIter<f64>,
    },
    TraceFile {
        lines: std::io::Lines<BufReader<File>>,
        path: String,
        line_no: usize,
        last_bits: u64,
    },
}

/// The lazy arrival iterator [`Workload::stream`] returns: O(1) state,
/// yields [`Request`]s in nondecreasing arrival order.
#[derive(Debug)]
pub struct RequestStream {
    source: Source,
    /// Current virtual time of the generator, s.
    t: f64,
    gap_rng: StdRng,
    mix_rng: StdRng,
    class_rng: StdRng,
    mix: Vec<(usize, f64)>,
    total_weight: f64,
    classes: Vec<ClassSpec>,
    class_weight: f64,
    remaining: usize,
    next_id: u64,
}

impl RequestStream {
    /// The workload's class table (empty = one anonymous class).
    pub fn classes(&self) -> &[ClassSpec] {
        &self.classes
    }

    /// Next arrival instant plus any per-arrival overrides a trace file
    /// carries: `(time, network override, class override)`.
    fn next_arrival(&mut self) -> Option<(f64, Option<usize>, Option<usize>)> {
        match &mut self.source {
            Source::Poisson { rate } => {
                self.t += exp_gap(&mut self.gap_rng, *rate);
                Some((self.t, None, None))
            }
            Source::Bursty {
                rate,
                burst,
                on_s,
                off_s,
                low,
                in_on,
                phase_end,
            } => {
                loop {
                    let r = if *in_on { *burst * *rate } else { *low };
                    let gap = exp_gap(&mut self.gap_rng, r);
                    if self.t + gap <= *phase_end {
                        self.t += gap;
                        break;
                    }
                    // The gap crosses the phase boundary: jump to the
                    // boundary and re-draw at the new phase's rate, which
                    // keeps the process properly modulated. The boundary
                    // advances by a full phase each redraw, so the loop
                    // always terminates.
                    self.t = *phase_end;
                    *in_on = !*in_on;
                    *phase_end += if *in_on { *on_s } else { *off_s };
                }
                Some((self.t, None, None))
            }
            Source::Diurnal {
                rate,
                amplitude,
                period_s,
            } => {
                // Thinning against the peak rate: candidate gaps at
                // rate×(1+amplitude), accepted with probability
                // rate(t)/peak. Acceptance ≥ 1/(1+amplitude) ≥ ½.
                let peak = *rate * (1.0 + *amplitude);
                loop {
                    self.t += exp_gap(&mut self.gap_rng, peak);
                    let r = *rate
                        * (1.0 + *amplitude * (std::f64::consts::TAU * self.t / *period_s).sin());
                    let u: f64 = self.gap_rng.random();
                    if u * peak <= r {
                        return Some((self.t, None, None));
                    }
                }
            }
            Source::Flash {
                rate,
                spike,
                at_s,
                decay_s,
            } => loop {
                let before = self.t < *at_s;
                let bound = if before { *rate } else { *rate * *spike };
                let gap = exp_gap(&mut self.gap_rng, bound);
                if before && self.t + gap > *at_s {
                    // The candidate crosses the spike front, where the
                    // baseline bound stops dominating: restart the
                    // (memoryless) draw at the front.
                    self.t = *at_s;
                    continue;
                }
                self.t += gap;
                if before {
                    // rate(t) equals the bound exactly here: always accept.
                    return Some((self.t, None, None));
                }
                let r = *rate * (1.0 + (*spike - 1.0) * (-(self.t - *at_s) / *decay_s).exp());
                let u: f64 = self.gap_rng.random();
                if u * bound <= r {
                    return Some((self.t, None, None));
                }
            },
            Source::Trace { times } => times.next().map(|t| (t, None, None)),
            Source::TraceFile {
                lines,
                path,
                line_no,
                last_bits,
            } => loop {
                let line = match lines.next() {
                    None => return None,
                    Some(Ok(line)) => line,
                    Some(Err(e)) => panic!("read error in arrival trace {path}: {e}"),
                };
                *line_no += 1;
                let s = line.trim();
                if s.is_empty() {
                    continue;
                }
                let t = json_number(s, "arrival_s").unwrap_or_else(|| {
                    panic!("{path}:{line_no}: missing or malformed \"arrival_s\"")
                });
                assert!(
                    t.is_finite() && t >= 0.0,
                    "{path}:{line_no}: arrival_s must be finite and non-negative"
                );
                assert!(
                    t.to_bits() >= *last_bits,
                    "{path}:{line_no}: trace must be sorted by arrival_s \
                     (bounded-memory replay cannot sort)"
                );
                *last_bits = t.to_bits();
                let network = json_number(s, "network").map(|v| v as usize);
                let class = json_number(s, "class").map(|v| v as usize);
                return Some((t, network, class));
            },
        }
    }
}

impl Iterator for RequestStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        let (arrival_s, net_override, class_override) = self.next_arrival()?;
        self.remaining -= 1;
        let network = net_override
            .unwrap_or_else(|| pick_weighted(&mut self.mix_rng, &self.mix, self.total_weight));
        let class = match class_override {
            Some(c) => c,
            // A single configured class needs no draw; two or more share
            // the class randomness stream.
            None if self.classes.len() >= 2 => {
                pick_class(&mut self.class_rng, &self.classes, self.class_weight)
            }
            None => 0,
        };
        let id = self.next_id;
        self.next_id += 1;
        Some(Request {
            id,
            network,
            arrival_s,
            class,
        })
    }
}

/// Weighted draw from the network mix (one uniform per call).
fn pick_weighted(rng: &mut StdRng, mix: &[(usize, f64)], total_weight: f64) -> usize {
    let mut u: f64 = rng.random::<f64>() * total_weight;
    for &(network, w) in mix {
        if u < w {
            return network;
        }
        u -= w;
    }
    mix.last().expect("mix is non-empty").0
}

/// Weighted draw of a class index (one uniform per call).
fn pick_class(rng: &mut StdRng, classes: &[ClassSpec], total_weight: f64) -> usize {
    let mut u: f64 = rng.random::<f64>() * total_weight;
    for (i, c) in classes.iter().enumerate() {
        if u < c.weight {
            return i;
        }
        u -= c.weight;
    }
    classes.len() - 1
}

/// Extracts `"key": <number>` from a single-line JSON object without a
/// JSON parser dependency. Returns `None` when the key is absent or the
/// value is not a bare number.
fn json_number(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = line.find(&needle)?;
    let rest = line[at + needle.len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .unwrap_or(rest.len());
    rest[..end].parse::<f64>().ok()
}

/// One exponential interarrival gap at `rate` (inverse-CDF sampling).
fn exp_gap(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.random();
    // 1 - u ∈ (0, 1], so the log is finite.
    -(1.0 - u).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_list_parses_and_rejects_duplicates() {
        let classes = ClassSpec::parse_list("vip:3:5, batch:1", Some(20.0)).unwrap();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0], ClassSpec::with_slo("vip", 3.0, 5.0));
        assert_eq!(classes[1], ClassSpec::with_slo("batch", 1.0, 20.0));
        let best_effort = ClassSpec::parse_list("solo:2", None).unwrap();
        assert_eq!(best_effort[0], ClassSpec::best_effort("solo", 2.0));

        let err = ClassSpec::parse_list("vip:1, vip:2:9", None).unwrap_err();
        assert!(
            err.contains("duplicate class name `vip`"),
            "unexpected message: {err}"
        );
        assert!(ClassSpec::parse_list("", None).is_err());
        assert!(ClassSpec::parse_list("vip", None).is_err());
        assert!(ClassSpec::parse_list("vip:-1", None).is_err());
        assert!(ClassSpec::parse_list("vip:1:0", None).is_err());
        assert!(ClassSpec::parse_list(":1", None).is_err());
    }

    #[test]
    fn poisson_is_deterministic_and_sorted() {
        let w = Workload::poisson(1000.0, 0);
        let a = w.generate(500, 42);
        let b = w.generate(500, 42);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|p| p[0].arrival_s <= p[1].arrival_s));
        assert!(a.iter().all(|r| r.arrival_s > 0.0));
        assert!(a.iter().all(|r| r.class == 0));
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn different_seeds_differ() {
        let w = Workload::poisson(1000.0, 0);
        assert_ne!(w.generate(100, 1), w.generate(100, 2));
    }

    #[test]
    fn poisson_mean_rate_is_close() {
        let w = Workload::poisson(2000.0, 0);
        let reqs = w.generate(4000, 7);
        let span = reqs.last().unwrap().arrival_s;
        let rate = reqs.len() as f64 / span;
        assert!((rate / 2000.0 - 1.0).abs() < 0.1, "empirical rate {rate}");
    }

    #[test]
    fn bursty_preserves_mean_rate_and_clusters() {
        let w = Workload {
            process: ArrivalProcess::Bursty {
                rate_rps: 1000.0,
                burst: 4.0,
                on_s: 0.01,
                off_s: 0.04,
            },
            mix: vec![(0, 1.0)],
            classes: Vec::new(),
        };
        let reqs = w.generate(4000, 11);
        let span = reqs.last().unwrap().arrival_s;
        let rate = reqs.len() as f64 / span;
        assert!((rate / 1000.0 - 1.0).abs() < 0.25, "empirical rate {rate}");
        // Burstiness: the gap distribution has a higher coefficient of
        // variation than exponential (CV = 1).
        let gaps: Vec<f64> = reqs
            .windows(2)
            .map(|p| p[1].arrival_s - p[0].arrival_s)
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        assert!(var.sqrt() / mean > 1.1, "CV = {}", var.sqrt() / mean);
    }

    #[test]
    fn trace_replays_sorted() {
        let w = Workload {
            process: ArrivalProcess::Trace {
                times_s: vec![0.3, 0.1, 0.2],
            },
            mix: vec![(0, 1.0)],
            classes: Vec::new(),
        };
        let reqs = w.generate(3, 0);
        let times: Vec<f64> = reqs.iter().map(|r| r.arrival_s).collect();
        assert_eq!(times, vec![0.1, 0.2, 0.3]);
    }

    #[test]
    fn mix_draws_all_networks() {
        let w = Workload {
            process: ArrivalProcess::Poisson { rate_rps: 100.0 },
            mix: vec![(0, 1.0), (3, 1.0)],
            classes: Vec::new(),
        };
        let reqs = w.generate(200, 9);
        assert!(reqs.iter().any(|r| r.network == 0));
        assert!(reqs.iter().any(|r| r.network == 3));
        assert!(reqs.iter().all(|r| r.network == 0 || r.network == 3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        Workload::poisson(0.0, 0).generate(1, 0);
    }

    #[test]
    fn stream_matches_generate_for_every_process() {
        for process in [
            ArrivalProcess::Poisson { rate_rps: 3000.0 },
            ArrivalProcess::Bursty {
                rate_rps: 1000.0,
                burst: 4.0,
                on_s: 0.01,
                off_s: 0.04,
            },
            ArrivalProcess::Diurnal {
                rate_rps: 2000.0,
                amplitude: 0.5,
                period_s: 0.5,
            },
            ArrivalProcess::FlashCrowd {
                rate_rps: 1000.0,
                spike: 8.0,
                at_s: 0.05,
                decay_s: 0.02,
            },
            ArrivalProcess::Trace {
                times_s: vec![0.5, 0.25, 0.125, 0.75],
            },
        ] {
            let w = Workload {
                process,
                mix: vec![(0, 3.0), (1, 1.0)],
                classes: Vec::new(),
            };
            let eager = w.generate(300, 42);
            let lazy: Vec<Request> = w.stream(300, 42).collect();
            assert_eq!(eager, lazy, "lazy and eager paths must agree");
        }
    }

    #[test]
    fn diurnal_modulates_density_within_a_period() {
        let w = Workload {
            process: ArrivalProcess::Diurnal {
                rate_rps: 10_000.0,
                amplitude: 0.9,
                period_s: 1.0,
            },
            mix: vec![(0, 1.0)],
            classes: Vec::new(),
        };
        let reqs = w.generate(25_000, 13);
        assert!(reqs.windows(2).all(|p| p[0].arrival_s <= p[1].arrival_s));
        // First half-period (sin > 0) must be denser than the second.
        let first: usize = reqs
            .iter()
            .filter(|r| r.arrival_s.rem_euclid(1.0) < 0.5)
            .count();
        let second = reqs.len() - first;
        assert!(
            first as f64 > 1.5 * second as f64,
            "peak half {first} vs trough half {second}"
        );
        // The mean rate matches rate_rps when measured over whole
        // periods (a fractional period over-samples one half).
        let span = reqs.last().unwrap().arrival_s;
        assert!(span > 2.0, "stream must cover two full periods, got {span}");
        let in_two = reqs.iter().filter(|r| r.arrival_s < 2.0).count() as f64;
        let rate = in_two / 2.0;
        assert!((rate / 10_000.0 - 1.0).abs() < 0.1, "empirical rate {rate}");
    }

    #[test]
    fn flash_crowd_spikes_after_onset() {
        let w = Workload {
            process: ArrivalProcess::FlashCrowd {
                rate_rps: 1000.0,
                spike: 10.0,
                at_s: 0.1,
                decay_s: 0.05,
            },
            mix: vec![(0, 1.0)],
            classes: Vec::new(),
        };
        let reqs = w.generate(2000, 17);
        assert!(reqs.windows(2).all(|p| p[0].arrival_s <= p[1].arrival_s));
        let in_window = |lo: f64, hi: f64| {
            reqs.iter()
                .filter(|r| r.arrival_s >= lo && r.arrival_s < hi)
                .count() as f64
                / (hi - lo)
        };
        let before = in_window(0.0, 0.1);
        let during = in_window(0.1, 0.15);
        assert!(
            during > 3.0 * before,
            "spike density {during:.0} vs baseline {before:.0}"
        );
    }

    #[test]
    fn classes_split_traffic_by_weight() {
        let w = Workload::poisson(1000.0, 0).with_classes(vec![
            ClassSpec::with_slo("interactive", 3.0, 10.0),
            ClassSpec::best_effort("batch", 1.0),
        ]);
        let reqs = w.generate(2000, 21);
        let interactive = reqs.iter().filter(|r| r.class == 0).count();
        let batch = reqs.iter().filter(|r| r.class == 1).count();
        assert_eq!(interactive + batch, 2000);
        let share = interactive as f64 / 2000.0;
        assert!((share - 0.75).abs() < 0.05, "interactive share {share}");
    }

    #[test]
    fn classless_workload_consumes_no_class_randomness() {
        // Adding a single class (no draw needed) must not perturb the
        // request stream relative to no classes at all.
        let bare = Workload::poisson(1000.0, 0).generate(200, 5);
        let one = Workload::poisson(1000.0, 0)
            .with_classes(vec![ClassSpec::with_slo("all", 1.0, 5.0)])
            .generate(200, 5);
        assert_eq!(
            bare,
            one.iter()
                .map(|r| Request {
                    class: 0,
                    ..r.clone()
                })
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn trace_file_replays_with_overrides() {
        let path = std::env::temp_dir().join(format!(
            "albireo_trace_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(
            &path,
            "{\"arrival_s\": 0.001}\n\
             \n\
             {\"arrival_s\": 0.002, \"network\": 1}\n\
             {\"arrival_s\": 0.004, \"network\": 0, \"class\": 1}\n",
        )
        .unwrap();
        let w = Workload {
            process: ArrivalProcess::TraceFile {
                path: path.to_string_lossy().into_owned(),
            },
            mix: vec![(0, 1.0)],
            classes: vec![
                ClassSpec::best_effort("a", 1.0),
                ClassSpec::best_effort("b", 1.0),
            ],
        };
        let reqs = w.generate(10, 3);
        std::fs::remove_file(&path).ok();
        assert_eq!(reqs.len(), 3, "blank lines are skipped");
        assert_eq!(reqs[0].arrival_s, 0.001);
        assert_eq!(reqs[1].network, 1, "network override honored");
        assert_eq!(reqs[2].class, 1, "class override honored");
        assert_eq!(reqs[2].network, 0);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival_s")]
    fn unsorted_trace_file_rejected() {
        let path = std::env::temp_dir().join(format!(
            "albireo_trace_unsorted_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, "{\"arrival_s\": 0.2}\n{\"arrival_s\": 0.1}\n").unwrap();
        let w = Workload {
            process: ArrivalProcess::TraceFile {
                path: path.to_string_lossy().into_owned(),
            },
            mix: vec![(0, 1.0)],
            classes: Vec::new(),
        };
        let result = std::panic::catch_unwind(|| w.generate(10, 0));
        std::fs::remove_file(&path).ok();
        std::panic::resume_unwind(result.unwrap_err());
    }

    #[test]
    fn stream_state_is_o1_for_generated_processes() {
        // The stream must not buffer requests: pulling one at a time from
        // a million-request stream touches only generator state.
        let w = Workload::poisson(1_000_000.0, 0);
        let mut s = w.stream(1_000_000, 42);
        let first = s.next().unwrap();
        assert_eq!(first.id, 0);
        let hundredth = s.nth(98).unwrap();
        assert_eq!(hundredth.id, 99);
        assert!(hundredth.arrival_s > first.arrival_s);
    }
}

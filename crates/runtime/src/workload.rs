//! Seeded request-stream generation: the arrival side of the serving
//! simulator.
//!
//! A [`Workload`] turns `(seed, request count)` into a deterministic,
//! time-sorted vector of [`Request`]s. Three arrival processes are
//! provided:
//!
//! * **Poisson** — i.i.d. exponential interarrival gaps at a fixed mean
//!   rate, the standard open-loop service model;
//! * **Bursty** — a two-phase modulated Poisson process (an MMPP-2): the
//!   generator alternates between an *on* phase at `burst × rate` and an
//!   *off* phase at a compensating low rate, so the long-run mean rate is
//!   preserved while arrivals cluster — the tail-latency stressor;
//! * **Trace** — explicit arrival instants, for replaying measured
//!   traffic.
//!
//! Determinism contract: generation draws from a `StdRng` seeded with
//! `split_seed(seed, stream)` per concern (one stream for gaps, one for
//! network choice), so a workload is a pure function of `(spec, seed)` —
//! independent of thread count, host, or call site.

use albireo_parallel::{split_seed, stream_id};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stream-id pass tag for interarrival-gap draws.
const GAP_PASS: u64 = 0x5E1;
/// Stream-id pass tag for network-mix draws.
const MIX_PASS: u64 = 0x5E2;

/// One inference request offered to the service.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Monotone request id (arrival order).
    pub id: u64,
    /// Index into the workload's network mix.
    pub network: usize,
    /// Arrival instant on the virtual clock, s.
    pub arrival_s: f64,
}

/// The arrival process shaping request interarrival times.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Exponential interarrival gaps at `rate_rps` requests per second.
    Poisson {
        /// Mean arrival rate, requests/s.
        rate_rps: f64,
    },
    /// Two-phase modulated Poisson: `on_s` seconds at `burst × rate_rps`,
    /// then `off_s` seconds at the compensating low rate that keeps the
    /// long-run mean at `rate_rps`.
    Bursty {
        /// Long-run mean arrival rate, requests/s.
        rate_rps: f64,
        /// On-phase rate multiplier (> 1).
        burst: f64,
        /// On-phase duration, s.
        on_s: f64,
        /// Off-phase duration, s.
        off_s: f64,
    },
    /// Explicit arrival instants (need not be sorted; they are sorted
    /// during generation).
    Trace {
        /// Arrival times, s.
        times_s: Vec<f64>,
    },
}

impl ArrivalProcess {
    /// The long-run mean arrival rate this process aims at, requests/s
    /// (for traces, the empirical rate over the trace span).
    pub fn mean_rate_rps(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_rps } => *rate_rps,
            ArrivalProcess::Bursty { rate_rps, .. } => *rate_rps,
            ArrivalProcess::Trace { times_s } => {
                let span = times_s
                    .iter()
                    .cloned()
                    .fold(0.0f64, f64::max)
                    .max(f64::MIN_POSITIVE);
                times_s.len() as f64 / span
            }
        }
    }

    /// A short label for reports (`poisson`, `bursty`, `trace`).
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
            ArrivalProcess::Trace { .. } => "trace",
        }
    }
}

/// A request stream specification: the arrival process plus the network
/// mix requests draw from.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The arrival process.
    pub process: ArrivalProcess,
    /// Weighted network mix: `(network index, weight)`. Weights need not
    /// sum to one; they are normalized at draw time. Network indices refer
    /// to the fleet's model table.
    pub mix: Vec<(usize, f64)>,
}

impl Workload {
    /// A single-network Poisson workload — the common case.
    pub fn poisson(rate_rps: f64, network: usize) -> Workload {
        Workload {
            process: ArrivalProcess::Poisson { rate_rps },
            mix: vec![(network, 1.0)],
        }
    }

    /// Generates the first `n` requests of the stream, deterministically
    /// from `seed`. Returned requests are sorted by arrival time; ids are
    /// assigned in arrival order.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Request> {
        assert!(
            !self.mix.is_empty() && self.mix.iter().all(|&(_, w)| w >= 0.0),
            "network mix must be non-empty with non-negative weights"
        );
        let total_weight: f64 = self.mix.iter().map(|&(_, w)| w).sum();
        assert!(total_weight > 0.0, "network mix weights must not all be 0");
        let mut gap_rng = StdRng::seed_from_u64(split_seed(seed, stream_id(GAP_PASS, 0, 0)));
        let mut mix_rng = StdRng::seed_from_u64(split_seed(seed, stream_id(MIX_PASS, 0, 0)));
        let mut times = match &self.process {
            ArrivalProcess::Poisson { rate_rps } => {
                assert!(*rate_rps > 0.0, "arrival rate must be positive");
                let mut t = 0.0f64;
                (0..n)
                    .map(|_| {
                        t += exp_gap(&mut gap_rng, *rate_rps);
                        t
                    })
                    .collect::<Vec<f64>>()
            }
            ArrivalProcess::Bursty {
                rate_rps,
                burst,
                on_s,
                off_s,
            } => {
                assert!(*rate_rps > 0.0, "arrival rate must be positive");
                assert!(*burst > 1.0, "burst factor must exceed 1");
                assert!(
                    *on_s > 0.0 && *off_s > 0.0,
                    "phase durations must be positive"
                );
                // Low rate chosen so the duty-cycle-weighted mean is rate_rps;
                // clamped at a trickle so the off phase still terminates.
                let period = on_s + off_s;
                let low =
                    ((rate_rps * period - burst * rate_rps * on_s) / off_s).max(rate_rps * 1e-3);
                let mut t = 0.0f64;
                let mut in_on = true;
                let mut phase_end = *on_s;
                (0..n)
                    .map(|_| {
                        loop {
                            let rate = if in_on { burst * rate_rps } else { low };
                            let gap = exp_gap(&mut gap_rng, rate);
                            if t + gap <= phase_end {
                                t += gap;
                                break;
                            }
                            // The gap crosses the phase boundary: jump to
                            // the boundary and re-draw at the new phase's
                            // rate, which keeps the process properly
                            // modulated. The boundary advances by a full
                            // phase each redraw, so the loop always
                            // terminates.
                            t = phase_end;
                            in_on = !in_on;
                            phase_end += if in_on { *on_s } else { *off_s };
                        }
                        t
                    })
                    .collect::<Vec<f64>>()
            }
            ArrivalProcess::Trace { times_s } => {
                let mut t: Vec<f64> = times_s.iter().take(n).cloned().collect();
                t.sort_by(|a, b| a.partial_cmp(b).expect("trace times must be finite"));
                t
            }
        };
        times.truncate(n);
        times
            .into_iter()
            .enumerate()
            .map(|(i, arrival_s)| Request {
                id: i as u64,
                network: self.pick_network(&mut mix_rng, total_weight),
                arrival_s,
            })
            .collect()
    }

    fn pick_network(&self, rng: &mut StdRng, total_weight: f64) -> usize {
        let mut u: f64 = rng.random::<f64>() * total_weight;
        for &(network, w) in &self.mix {
            if u < w {
                return network;
            }
            u -= w;
        }
        self.mix.last().expect("mix is non-empty").0
    }
}

/// One exponential interarrival gap at `rate` (inverse-CDF sampling).
fn exp_gap(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.random();
    // 1 - u ∈ (0, 1], so the log is finite.
    -(1.0 - u).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_sorted() {
        let w = Workload::poisson(1000.0, 0);
        let a = w.generate(500, 42);
        let b = w.generate(500, 42);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|p| p[0].arrival_s <= p[1].arrival_s));
        assert!(a.iter().all(|r| r.arrival_s > 0.0));
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn different_seeds_differ() {
        let w = Workload::poisson(1000.0, 0);
        assert_ne!(w.generate(100, 1), w.generate(100, 2));
    }

    #[test]
    fn poisson_mean_rate_is_close() {
        let w = Workload::poisson(2000.0, 0);
        let reqs = w.generate(4000, 7);
        let span = reqs.last().unwrap().arrival_s;
        let rate = reqs.len() as f64 / span;
        assert!((rate / 2000.0 - 1.0).abs() < 0.1, "empirical rate {rate}");
    }

    #[test]
    fn bursty_preserves_mean_rate_and_clusters() {
        let w = Workload {
            process: ArrivalProcess::Bursty {
                rate_rps: 1000.0,
                burst: 4.0,
                on_s: 0.01,
                off_s: 0.04,
            },
            mix: vec![(0, 1.0)],
        };
        let reqs = w.generate(4000, 11);
        let span = reqs.last().unwrap().arrival_s;
        let rate = reqs.len() as f64 / span;
        assert!((rate / 1000.0 - 1.0).abs() < 0.25, "empirical rate {rate}");
        // Burstiness: the gap distribution has a higher coefficient of
        // variation than exponential (CV = 1).
        let gaps: Vec<f64> = reqs
            .windows(2)
            .map(|p| p[1].arrival_s - p[0].arrival_s)
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        assert!(var.sqrt() / mean > 1.1, "CV = {}", var.sqrt() / mean);
    }

    #[test]
    fn trace_replays_sorted() {
        let w = Workload {
            process: ArrivalProcess::Trace {
                times_s: vec![0.3, 0.1, 0.2],
            },
            mix: vec![(0, 1.0)],
        };
        let reqs = w.generate(3, 0);
        let times: Vec<f64> = reqs.iter().map(|r| r.arrival_s).collect();
        assert_eq!(times, vec![0.1, 0.2, 0.3]);
    }

    #[test]
    fn mix_draws_all_networks() {
        let w = Workload {
            process: ArrivalProcess::Poisson { rate_rps: 100.0 },
            mix: vec![(0, 1.0), (3, 1.0)],
        };
        let reqs = w.generate(200, 9);
        assert!(reqs.iter().any(|r| r.network == 0));
        assert!(reqs.iter().any(|r| r.network == 3));
        assert!(reqs.iter().all(|r| r.network == 0 || r.network == 3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        Workload::poisson(0.0, 0).generate(1, 0);
    }
}

//! The serving engine's event queue: a monotone-run / 4-ary-heap hybrid
//! that pops in exactly the total order the old `BinaryHeap<Reverse<_>>`
//! used, but is fast at depth.
//!
//! Keys are `(time_bits, class, seq)` packed into one `u128`
//! ([`EventKey`]), so every comparison is a single integer compare
//! instead of a three-field lexicographic one. Two structural ideas make
//! the queue cheap for DES workloads:
//!
//! * **Monotone run.** Discrete-event simulators push most events in
//!   nondecreasing key order (timers derived as `arrival + constant`,
//!   faults pre-sorted, completions from a monotone clock). A push whose
//!   key is ≥ the newest run entry appends to a `VecDeque` — O(1), cache
//!   linear, no sifting. This is the calendar-queue insight (events
//!   arrive roughly in time order) without its bucket-width tuning
//!   problem.
//! * **4-ary heap.** Out-of-order pushes go to a 4-ary implicit min-heap:
//!   half the tree depth of a binary heap, and the four children share a
//!   cache line of keys, so deep queues cost fewer, cheaper levels.
//!
//! `pop` takes the smaller of the run head and the heap root. Keys are
//! unique by construction (`seq` is an insertion counter), so the merge
//! order — and therefore the whole simulation — is total and
//! deterministic; `tests/queue_props.rs` proves pop order equals the old
//! `BinaryHeap` on random event streams, including same-timestamp ties.

use std::collections::VecDeque;

/// A packed `(time_bits, class, seq)` event key. Total order =
/// lexicographic over the three fields; `seq` must stay below 2^56
/// (an insertion counter never gets close).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey(u128);

impl EventKey {
    /// Packs a key. `time_bits` must come from a non-negative finite
    /// `f64` (where bit order equals numeric order).
    pub fn new(time_bits: u64, class: u8, seq: u64) -> EventKey {
        debug_assert!(seq < 1 << 56, "sequence counter overflow");
        EventKey(((time_bits as u128) << 64) | ((class as u128) << 56) | seq as u128)
    }

    /// The event's `f64` timestamp bits.
    pub fn time_bits(&self) -> u64 {
        (self.0 >> 64) as u64
    }

    /// The event's timestamp in seconds (exact round-trip of the bits).
    pub fn time_s(&self) -> f64 {
        f64::from_bits(self.time_bits())
    }

    /// The tie-break class.
    pub fn class(&self) -> u8 {
        ((self.0 >> 56) & 0xFF) as u8
    }

    /// The insertion sequence number.
    pub fn seq(&self) -> u64 {
        (self.0 & ((1 << 56) - 1)) as u64
    }
}

/// The hybrid event queue. `T` is the event payload.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    /// Entries pushed in nondecreasing key order (invariant: keys are
    /// nondecreasing front → back).
    run: VecDeque<(EventKey, T)>,
    /// Out-of-order entries, as an implicit 4-ary min-heap.
    heap: Vec<(EventKey, T)>,
    /// High-water mark of `len()`, for bounded-memory accounting.
    peak_len: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> EventQueue<T> {
        EventQueue {
            run: VecDeque::new(),
            heap: Vec::new(),
            peak_len: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue::default()
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.run.len() + self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.run.is_empty() && self.heap.is_empty()
    }

    /// The deepest the queue has been — the number to bound when
    /// proving O(1) memory at 10⁶⁺ requests.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Inserts an event. O(1) when keys arrive in nondecreasing order,
    /// O(log₄ n) otherwise.
    pub fn push(&mut self, key: EventKey, item: T) {
        let _prof = albireo_obs::profile::scope("runtime.queue.push");
        if self.run.back().is_none_or(|(back, _)| key >= *back) {
            self.run.push_back((key, item));
        } else {
            self.heap.push((key, item));
            self.sift_up(self.heap.len() - 1);
        }
        self.peak_len = self.peak_len.max(self.len());
    }

    /// The smallest pending key, if any.
    pub fn peek_key(&self) -> Option<EventKey> {
        match (self.run.front(), self.heap.first()) {
            (Some((r, _)), Some((h, _))) => Some(*r.min(h)),
            (Some((r, _)), None) => Some(*r),
            (None, Some((h, _))) => Some(*h),
            (None, None) => None,
        }
    }

    /// Removes and returns the smallest-keyed event.
    pub fn pop(&mut self) -> Option<(EventKey, T)> {
        let _prof = albireo_obs::profile::scope("runtime.queue.pop");
        let from_run = match (self.run.front(), self.heap.first()) {
            (Some((r, _)), Some((h, _))) => r < h,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if from_run {
            self.run.pop_front()
        } else {
            self.pop_heap()
        }
    }

    /// Every pending entry in pop order, without disturbing the queue —
    /// the capture half of checkpoint/resume.
    pub fn sorted_entries(&self) -> Vec<(EventKey, T)>
    where
        T: Clone,
    {
        let mut out: Vec<(EventKey, T)> =
            self.run.iter().chain(self.heap.iter()).cloned().collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Rebuilds a queue from entries in nondecreasing key order (what
    /// [`EventQueue::sorted_entries`] produced), restoring the recorded
    /// high-water mark. Sorted pushes all land in the monotone run, so
    /// the rebuilt queue pops in exactly the captured order.
    pub fn from_sorted(entries: Vec<(EventKey, T)>, peak_len: usize) -> EventQueue<T> {
        let mut q = EventQueue::new();
        for (key, item) in entries {
            debug_assert!(
                q.run.back().is_none_or(|(back, _)| key >= *back),
                "snapshot entries must be key-sorted"
            );
            q.push(key, item);
        }
        debug_assert!(q.heap.is_empty(), "sorted restore must not touch the heap");
        q.peak_len = q.peak_len.max(peak_len);
        q
    }

    fn pop_heap(&mut self) -> Option<(EventKey, T)> {
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let out = self.heap.pop();
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        out
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.heap[i].0 < self.heap[parent].0 {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let first_child = 4 * i + 1;
            if first_child >= self.heap.len() {
                return;
            }
            let mut smallest = i;
            for c in first_child..(first_child + 4).min(self.heap.len()) {
                if self.heap[c].0 < self.heap[smallest].0 {
                    smallest = c;
                }
            }
            if smallest == i {
                return;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: f64, class: u8, seq: u64) -> EventKey {
        EventKey::new(t.to_bits(), class, seq)
    }

    #[test]
    fn key_packs_and_unpacks() {
        let k = key(1.5, 3, 42);
        assert_eq!(k.time_s(), 1.5);
        assert_eq!(k.class(), 3);
        assert_eq!(k.seq(), 42);
    }

    #[test]
    fn key_order_is_lexicographic() {
        assert!(key(1.0, 3, 0) < key(2.0, 0, 0), "time dominates class");
        assert!(key(1.0, 0, 9) < key(1.0, 1, 0), "class dominates seq");
        assert!(key(1.0, 2, 3) < key(1.0, 2, 4), "seq breaks final ties");
    }

    #[test]
    fn monotone_pushes_stay_in_the_run() {
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.push(key(i as f64, 2, i), i);
        }
        assert_eq!(q.heap.len(), 0, "sorted stream must not touch the heap");
        for i in 0..100u64 {
            assert_eq!(q.pop().unwrap().1, i);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_streams_merge_in_key_order() {
        let mut q = EventQueue::new();
        // Monotone arrivals interleaved with out-of-order completions.
        for (seq, (t, class)) in [
            (0.1, 2u8),
            (0.2, 2),
            (0.15, 1), // out of order: heap
            (0.3, 2),
            (0.05, 0), // far out of order: heap
            (0.3, 1),  // same time as an arrival, lower class
        ]
        .into_iter()
        .enumerate()
        {
            q.push(key(t, class, seq as u64), (t, class));
        }
        let mut popped = Vec::new();
        while let Some((k, _)) = q.pop() {
            popped.push((k.time_s(), k.class()));
        }
        assert_eq!(
            popped,
            vec![(0.05, 0), (0.1, 2), (0.15, 1), (0.2, 2), (0.3, 1), (0.3, 2)]
        );
    }

    #[test]
    fn sorted_round_trip_preserves_pop_order_and_peak() {
        let mut q = EventQueue::new();
        for (seq, (t, class)) in [(0.3, 2u8), (0.1, 1), (0.2, 0), (0.1, 3), (0.05, 2)]
            .into_iter()
            .enumerate()
        {
            q.push(key(t, class, seq as u64), seq);
        }
        q.pop();
        let entries = q.sorted_entries();
        assert_eq!(entries.len(), 4);
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        let mut restored = EventQueue::from_sorted(entries, q.peak_len());
        assert_eq!(restored.peak_len(), q.peak_len());
        while let Some((k, item)) = q.pop() {
            assert_eq!(restored.pop(), Some((k, item)));
        }
        assert!(restored.is_empty());
    }

    #[test]
    fn peak_len_tracks_the_high_water_mark() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(key(i as f64, 0, i), ());
        }
        for _ in 0..10 {
            q.pop();
        }
        assert_eq!(q.peak_len(), 10);
        assert!(q.is_empty());
        assert_eq!(q.peek_key(), None);
    }
}

//! The deterministic discrete-event serving engine.
//!
//! One simulation run processes a seeded request stream against a fleet
//! on a virtual clock. Events are ordered by `(time, class, sequence)`:
//!
//! * `time` — the f64 virtual instant, compared through its IEEE-754 bit
//!   pattern (all event times are non-negative and finite, where that
//!   ordering is exact);
//! * `class` — a fixed tie-break between same-instant events: fleet
//!   **faults** apply first (a chip failing at *t* never picks up work
//!   arriving at *t*), then batch **completions** (freed chips are
//!   visible to same-instant arrivals), then **arrivals**, then batching
//!   **timers**;
//! * `sequence` — insertion order, making the whole ordering total.
//!
//! Internal events (faults, completions, timers) live in the
//! [`crate::queue::EventQueue`] hybrid. **Arrivals never enter the
//! queue**: the request stream is generated lazily
//! ([`crate::workload::RequestStream`]) and merged against the queue
//! head one lookahead request at a time — arrivals are the only class-2
//! events and the stream yields them in nondecreasing time order, so the
//! merged order is exactly the historical all-events-in-one-heap order
//! while the engine holds O(fleet + in-flight) state instead of
//! O(requests). Latency statistics accumulate into a
//! `QuantileSketch` + running sums (`RunTotals`), and
//! the run digest folds incrementally, so a 10⁶–10⁷-request run needs
//! no per-request memory beyond the (capped) record sample.
//!
//! Because the ordering is total and every stochastic choice draws from
//! the seeded workload generator, a run is a pure function of
//! `(fleet, config)` — byte-identical across hosts, thread counts, and
//! repetitions. Parallelism happens one level up (replica and sweep
//! fan-out in [`crate::study`]), never inside a run.
//!
//! Dispatch model: a single bounded FIFO feeds every chip. Whenever a
//! chip is free and the queue head is *ready* under the batching policy,
//! the dispatcher forms a single-network micro-batch from the earliest
//! queued requests of the head's network and places it on the
//! lowest-indexed free chip **that supports the head's network** — in a
//! heterogeneous fleet a reported electronic design only serves the
//! networks its source paper measured, so dispatch is FIFO with
//! head-of-line blocking, never reordering. Chips taken offline finish
//! their in-flight batch; requests still queued when the run ends with no
//! serviceable chip are counted as shed, so total chip loss degrades
//! goodput instead of erroring.

use crate::alerts::AlertPolicy;
use crate::autoscale::AutoscalePolicy;
use crate::fault::{FaultKind, FaultScenario};
use crate::fleet::{FleetConfig, ServiceOracle};
use crate::policy::{AdmissionControl, BatchPolicy};
use crate::queue::{EventKey, EventQueue};
use crate::report::{ChipReport, ClassTotals, RequestRecord, RunTotals, ServiceReport};
use crate::snapshot::SimSnapshot;
use crate::workload::{Request, RequestStream, Workload};
use albireo_obs::{fnv1a, track, ArgValue, Obs};
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;

/// Event class of streamed arrivals in the total order (between
/// completions and timers).
const ARRIVAL_CLASS: u8 = 2;

/// Everything one simulation run needs besides the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// The request stream.
    pub workload: Workload,
    /// Requests offered before the stream ends.
    pub requests: usize,
    /// Master seed for the run.
    pub seed: u64,
    /// Batching policy.
    pub policy: BatchPolicy,
    /// Admission control.
    pub admission: AdmissionControl,
    /// Timed fault scenario.
    pub faults: FaultScenario,
    /// Per-request records retained on the report (dispatch order).
    /// The digest and all metrics always cover every request; the cap
    /// only bounds the report's `records` sample — set it to 0 for
    /// million-request runs.
    pub record_cap: usize,
    /// Fleet provisioning policy. [`AutoscalePolicy::None`] reproduces
    /// the historical engine byte for byte (no warm-up states, no idle
    /// power); `Static`/`Elastic` charge idle power and, for `Elastic`,
    /// spin chips up and down on queue depth.
    pub autoscale: AutoscalePolicy,
    /// Burn-rate alerting policy applied to every SLO-carrying request
    /// class. Inert on classless (or SLO-free) workloads — such runs
    /// keep their historical reports and snapshots byte for byte.
    pub alert: AlertPolicy,
}

impl ServeConfig {
    /// A seeded Poisson run with immediate dispatch and default admission
    /// control, serving network index `network`.
    pub fn poisson(rate_rps: f64, requests: usize, seed: u64, network: usize) -> ServeConfig {
        ServeConfig {
            workload: Workload::poisson(rate_rps, network),
            requests,
            seed,
            policy: BatchPolicy::Immediate,
            admission: AdmissionControl::default(),
            faults: FaultScenario::none(),
            record_cap: usize::MAX,
            autoscale: AutoscalePolicy::None,
            alert: AlertPolicy::standard(),
        }
    }
}

impl fmt::Display for ServeConfig {
    /// One human-oriented line, for CLI diagnostics (`{:?}` stays the
    /// exhaustive derive for debugging).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let capacity = if self.admission.queue_capacity == usize::MAX {
            "unbounded".to_string()
        } else {
            self.admission.queue_capacity.to_string()
        };
        write!(
            f,
            "{} arrivals @ {:.0} rps, {} requests, seed {}, policy {}, queue {}, {} fault(s)",
            self.workload.process.label(),
            self.workload.process.mean_rate_rps(),
            self.requests,
            self.seed,
            self.policy.label(),
            capacity,
            self.faults.len(),
        )?;
        if let (Some(first), Some(last)) = (
            self.faults.sorted_events().first().map(|e| e.at_s),
            self.faults.sorted_events().last().map(|e| e.at_s),
        ) {
            write!(f, " in [{first:.3}, {last:.3}] s")?;
        }
        if !self.workload.classes.is_empty() {
            let mut names = String::new();
            for (i, c) in self.workload.classes.iter().enumerate() {
                if i > 0 {
                    names.push('+');
                }
                names.push_str(&c.name);
                if let Some(slo) = c.slo_ms {
                    let _ = write!(names, "<{slo}ms");
                }
            }
            write!(f, ", classes {names}")?;
            if self.workload.classes.iter().any(|c| c.slo_ms.is_some()) {
                write!(f, ", alerts {}", self.alert.label())?;
            }
        }
        if self.record_cap != usize::MAX {
            write!(f, ", record cap {}", self.record_cap)?;
        }
        if self.autoscale != AutoscalePolicy::None {
            write!(f, ", autoscale {}", self.autoscale)?;
        }
        Ok(())
    }
}

/// Queue-resident event payloads. Arrivals are streamed, never queued.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum EventKind {
    Fault(FaultKind),
    Completion {
        chip: usize,
    },
    /// A spun-up chip finished warming and becomes serviceable.
    WarmedUp {
        chip: usize,
    },
    Timer,
}

impl EventKind {
    fn class(&self) -> u8 {
        match self {
            EventKind::Fault(_) => 0,
            // Warm-up completions share the completion class: capacity
            // freed (or gained) at t is visible to arrivals at t.
            EventKind::Completion { .. } | EventKind::WarmedUp { .. } => 1,
            EventKind::Timer => 3,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ChipState {
    pub(crate) online: bool,
    pub(crate) plcgs_down: usize,
    pub(crate) busy: bool,
    pub(crate) busy_s: f64,
    pub(crate) energy_j: f64,
    pub(crate) served: u64,
    pub(crate) batches: u64,
    /// Autoscaling: parked chips are deprovisioned (no power, no work).
    pub(crate) parked: bool,
    /// Autoscaling: warming chips draw idle power but cannot serve yet.
    pub(crate) warming: bool,
    /// Provisioned seconds accumulated over completed park cycles (the
    /// open cycle since `provisioned_at_s` is closed at park/end time).
    pub(crate) provisioned_s: f64,
    /// Start of the current provisioned interval (meaningful while not
    /// parked).
    pub(crate) provisioned_at_s: f64,
    /// Elastic spin-ups of this chip.
    pub(crate) spin_ups: u64,
}

struct Sim<'a> {
    fleet: &'a FleetConfig,
    cfg: &'a ServeConfig,
    obs: &'a Obs,
    oracle: ServiceOracle,
    events: EventQueue<EventKind>,
    seq: u64,
    queue: VecDeque<Request>,
    chips: Vec<ChipState>,
    stream: RequestStream,
    /// Lookahead request — the next arrival not yet merged into the run.
    next_arrival: Option<Request>,
    totals: RunTotals,
}

impl<'a> Sim<'a> {
    fn push(&mut self, time_s: f64, kind: EventKind) {
        debug_assert!(time_s.is_finite() && time_s >= 0.0);
        let key = EventKey::new(time_s.to_bits(), kind.class(), self.seq);
        self.seq += 1;
        self.events.push(key, kind);
    }

    /// Pulls the next arrival from the lazy stream, validating its
    /// coordinates against the fleet.
    fn pull_arrival(&mut self) -> Option<Request> {
        let r = self.stream.next()?;
        assert!(
            r.network < self.fleet.models.len(),
            "request network {} outside the fleet's model table",
            r.network
        );
        assert!(
            self.totals.classes.is_empty() || r.class < self.totals.classes.len(),
            "request class {} outside the workload's class table",
            r.class
        );
        Some(r)
    }

    /// Surviving compute groups on `chip` (PLCGs for Albireo, MAC units
    /// for PIXEL, engines for DEAP-CNN; the state field keeps its
    /// historical `plcgs_down` name).
    fn groups_active(&self, chip: usize) -> usize {
        self.fleet.chips[chip]
            .accel
            .compute_groups()
            .saturating_sub(self.chips[chip].plcgs_down)
    }

    fn serviceable(&self, chip: usize, network: usize) -> bool {
        let c = &self.chips[chip];
        c.online
            && !c.busy
            && !c.parked
            && !c.warming
            && self.groups_active(chip) > 0
            && self.fleet.chips[chip]
                .accel
                .supports(&self.fleet.models[network])
    }

    /// Whether at least `n` queued requests target `network` (early-exit
    /// scan, so Immediate dispatch never walks the queue).
    fn same_network_at_least(&self, network: usize, n: usize) -> bool {
        let mut seen = 0;
        for r in &self.queue {
            if r.network == network {
                seen += 1;
                if seen >= n {
                    return true;
                }
            }
        }
        false
    }

    /// Whether the queue head may be dispatched now under the policy.
    fn head_ready(&self, now: f64) -> bool {
        let Some(head) = self.queue.front() else {
            return false;
        };
        let drained = self.next_arrival.is_none();
        match self.cfg.policy {
            BatchPolicy::Immediate => true,
            BatchPolicy::SizeN { size } => {
                self.same_network_at_least(head.network, size) || drained
            }
            BatchPolicy::Deadline {
                max_wait_s,
                max_size,
            } => {
                self.same_network_at_least(head.network, max_size)
                    || now >= head.arrival_s + max_wait_s
                    || drained
            }
        }
    }

    /// Removes the queue head's micro-batch: the earliest queued requests
    /// of the head's network, up to the policy's batch bound. The common
    /// case — a contiguous same-network prefix — pops in place; only a
    /// genuinely interleaved queue pays the compacting scan.
    fn take_batch(&mut self) -> Vec<Request> {
        let network = self.queue.front().expect("head exists").network;
        let max = self.cfg.policy.max_batch();
        let mut batch = Vec::with_capacity(max.min(64));
        while batch.len() < max && self.queue.front().is_some_and(|r| r.network == network) {
            batch.push(self.queue.pop_front().expect("front exists"));
        }
        if batch.len() < max && self.queue.iter().any(|r| r.network == network) {
            let mut rest = VecDeque::with_capacity(self.queue.len());
            while let Some(r) = self.queue.pop_front() {
                if r.network == network && batch.len() < max {
                    batch.push(r);
                } else {
                    rest.push_back(r);
                }
            }
            self.queue = rest;
        }
        batch
    }

    /// Folds one completed request into the streaming accumulators (and
    /// the capped record sample).
    fn complete_request(&mut self, req: &Request, chip: usize, start_s: f64, finish_s: f64) {
        let fold = |d: u64, bits: u64| d.rotate_left(7) ^ bits;
        let t = &mut self.totals;
        let mut f = t.rec_fold;
        f = fold(f, req.id);
        f = fold(f, req.network as u64);
        f = fold(f, chip as u64);
        f = fold(f, req.arrival_s.to_bits());
        f = fold(f, start_s.to_bits());
        f = fold(f, finish_s.to_bits());
        t.rec_fold = f;
        t.rec_count += 1;
        let latency_ms = (finish_s - req.arrival_s) * 1e3;
        t.latency_ms.observe(latency_ms);
        t.latency_sum_ms += latency_ms;
        t.wait_sum_ms += (start_s - req.arrival_s) * 1e3;
        t.max_finish_s = t.max_finish_s.max(finish_s);
        if let Some(cs) = t.classes.get_mut(req.class) {
            cs.completed += 1;
            cs.latency_sum_ms += latency_ms;
            cs.latency_ms.observe(latency_ms);
            let hit = cs.slo_ms.is_some_and(|slo| latency_ms <= slo);
            if hit {
                cs.slo_hits += 1;
            }
            if cs.slo_ms.is_some() {
                // The outcome is known at dispatch (depth-first batch
                // execution fixes finish times then), so the alert clock
                // advances monotonically with the event clock.
                t.alerts.observe(req.class, start_s, !hit);
            }
        }
        if t.records.len() < self.cfg.record_cap {
            t.records.push(RequestRecord {
                id: req.id,
                network: req.network,
                chip,
                arrival_s: req.arrival_s,
                start_s,
                finish_s,
            });
        }
    }

    /// Dispatches ready work onto free chips until one side is exhausted.
    fn try_dispatch(&mut self, now: f64) {
        loop {
            if !self.head_ready(now) {
                return;
            }
            let network = self.queue.front().expect("head exists").network;
            let Some(chip) = (0..self.chips.len()).find(|&c| self.serviceable(c, network)) else {
                return;
            };
            let batch = self.take_batch();
            let cost =
                self.oracle
                    .cost(self.fleet, chip, self.groups_active(chip), batch[0].network);
            let busy = cost.batch_latency_s(batch.len());
            let energy = cost.batch_energy_j(batch.len());
            if self.obs.is_enabled() {
                // Head-of-line-blocking wait: time from arrival to the
                // dispatch instant, per request in the batch.
                let wait_h = self.obs.histogram("serve.wait_s");
                for req in &batch {
                    wait_h.observe(now - req.arrival_s);
                }
                self.obs.record_instant(
                    track::DISPATCH,
                    now,
                    "batch_formed",
                    vec![
                        ("chip", ArgValue::from(chip)),
                        ("network", ArgValue::from(network)),
                        ("n", ArgValue::from(batch.len())),
                        ("queue", ArgValue::from(self.queue.len())),
                    ],
                );
                self.obs.record_counter_sample(
                    track::DISPATCH,
                    now,
                    "queue_depth",
                    ArgValue::from(self.queue.len()),
                );
                albireo_obs::span!(
                    self.obs,
                    track = track::CHIP_BASE + chip as u32,
                    begin = now,
                    end = now + busy,
                    self.fleet.models[network].name(),
                    n = batch.len(),
                    network = network,
                );
                self.obs.counter("serve.batches").add(1);
                self.obs.counter("serve.dispatched").add(batch.len() as u64);
            }
            let state = &mut self.chips[chip];
            state.busy = true;
            state.busy_s += busy;
            state.energy_j += energy;
            state.served += batch.len() as u64;
            state.batches += 1;
            for (i, req) in batch.iter().enumerate() {
                // Depth-first execution is sequential within the batch:
                // request i completes after setup + (i+1) inferences.
                let finish_s = now + cost.batch_setup_s + (i + 1) as f64 * cost.item_latency_s;
                self.complete_request(req, chip, now, finish_s);
            }
            self.push(now + busy, EventKind::Completion { chip });
        }
    }

    fn apply_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::ChipOffline { chip } => {
                if let Some(c) = self.chips.get_mut(chip) {
                    c.online = false;
                }
            }
            FaultKind::ChipOnline { chip } => {
                if let Some(c) = self.chips.get_mut(chip) {
                    c.online = true;
                    c.plcgs_down = 0;
                }
            }
            FaultKind::PlcgOffline { chip, count } => {
                if let Some(c) = self.chips.get_mut(chip) {
                    c.plcgs_down += count;
                }
            }
            FaultKind::PlcgRestore { chip, count } => {
                if let Some(c) = self.chips.get_mut(chip) {
                    c.plcgs_down = c.plcgs_down.saturating_sub(count);
                }
            }
        }
    }

    /// Elastic scale-up: while the queue holds at least `up_depth`
    /// pending requests per chip already warming (so in-flight warm-ups
    /// discount further spin-ups), unpark the lowest-indexed parked chip
    /// and schedule its warm-up completion. A pure function of DES state
    /// at an event instant, so determinism is untouched.
    fn autoscale_up(&mut self, now: f64) {
        let AutoscalePolicy::Elastic {
            up_depth, warmup_s, ..
        } = self.cfg.autoscale
        else {
            return;
        };
        loop {
            let warming = self.chips.iter().filter(|c| c.warming).count();
            if self.queue.len() < up_depth * (warming + 1) {
                return;
            }
            let Some(idx) = self.chips.iter().position(|c| c.parked) else {
                return;
            };
            let c = &mut self.chips[idx];
            c.parked = false;
            c.warming = true;
            c.provisioned_at_s = now;
            c.spin_ups += 1;
            self.push(now + warmup_s, EventKind::WarmedUp { chip: idx });
            if self.obs.is_enabled() {
                self.obs.record_instant(
                    track::DISPATCH,
                    now,
                    "scale_up",
                    vec![
                        ("chip", ArgValue::from(idx)),
                        ("queue", ArgValue::from(self.queue.len())),
                    ],
                );
                self.obs.counter("serve.spin_ups").add(1);
            }
        }
    }

    /// Elastic scale-down: when the system is fully idle (empty queue,
    /// nothing busy or warming toward queued work), park every
    /// provisioned chip above the `min_chips` floor, closing its
    /// provisioned interval.
    fn autoscale_down(&mut self, now: f64) {
        let AutoscalePolicy::Elastic { min_chips, .. } = self.cfg.autoscale else {
            return;
        };
        if !self.queue.is_empty() || self.chips.iter().any(|c| c.busy) {
            return;
        }
        for idx in min_chips..self.chips.len() {
            let c = &mut self.chips[idx];
            if !c.parked && !c.warming && !c.busy {
                c.provisioned_s += now - c.provisioned_at_s;
                c.parked = true;
                if self.obs.is_enabled() {
                    self.obs.record_instant(
                        track::DISPATCH,
                        now,
                        "scale_down",
                        vec![("chip", ArgValue::from(idx))],
                    );
                }
            }
        }
    }

    /// Records one shed request (admission rejection or end-of-run
    /// stranding) in the totals. A shed request misses its SLO by
    /// definition, so it burns the class's error budget at `at_s`.
    fn shed_request(&mut self, class: usize, at_s: f64) {
        self.totals.shed += 1;
        if let Some(cs) = self.totals.classes.get_mut(class) {
            cs.shed += 1;
            if cs.slo_ms.is_some() {
                self.totals.alerts.observe(class, at_s, true);
            }
        }
    }

    fn on_arrival(&mut self, req: Request) {
        let now = req.arrival_s;
        self.totals.offered += 1;
        self.totals.last_arrival_s = now;
        if self.queue.len() >= self.cfg.admission.queue_capacity {
            self.shed_request(req.class, now);
            if self.obs.is_enabled() {
                self.obs.record_instant(
                    track::DISPATCH,
                    now,
                    "shed",
                    vec![
                        ("id", ArgValue::from(req.id)),
                        ("network", ArgValue::from(req.network)),
                    ],
                );
                self.obs.counter("serve.shed").add(1);
            }
        } else {
            if let BatchPolicy::Deadline { max_wait_s, .. } = self.cfg.policy {
                // The timer recomputes the readiness deadline with the
                // same expression head_ready uses, so the comparison is
                // exact.
                self.push(req.arrival_s + max_wait_s, EventKind::Timer);
            }
            self.queue.push_back(req);
            self.totals.max_queue_depth = self.totals.max_queue_depth.max(self.queue.len());
            if self.obs.is_enabled() {
                self.obs.record_counter_sample(
                    track::DISPATCH,
                    now,
                    "queue_depth",
                    ArgValue::from(self.queue.len()),
                );
            }
        }
        self.autoscale_up(now);
        self.try_dispatch(now);
    }

    fn run(self) -> ServiceReport {
        match self.run_checkpointed(None) {
            ServeOutcome::Completed(report) => *report,
            ServeOutcome::Halted { .. } => unreachable!("halting requires a checkpointer"),
        }
    }

    /// Captures the full engine state at checkpoint boundary `at_s`.
    /// Everything strictly before the boundary has been applied; events
    /// at or after it are still pending.
    fn capture(&self, at_s: f64, checkpoints: u64) -> SimSnapshot {
        SimSnapshot {
            fingerprint: config_fingerprint(self.fleet, self.cfg),
            requests: self.cfg.requests,
            seed: self.cfg.seed,
            at_s,
            checkpoints,
            seq: self.seq,
            next_arrival: self.next_arrival.clone(),
            totals: self.totals.clone(),
            queue: self.queue.iter().cloned().collect(),
            events: self
                .events
                .sorted_entries()
                .into_iter()
                .map(|(k, kind)| (k.time_bits(), k.class(), k.seq(), kind))
                .collect(),
            peak_event_queue: self.events.peak_len(),
            chips: self.chips.clone(),
        }
    }

    fn run_checkpointed(mut self, mut ckpt: Option<Checkpointer<'_>>) -> ServeOutcome {
        loop {
            // Merge the arrival lookahead against the event queue on the
            // shared `(time, class)` key. Arrivals are the only class-2
            // events, so this two-way merge reproduces the historical
            // one-heap total order exactly: cross-class ties resolve by
            // class, and same-class ties only arise within one side,
            // where insertion order is already preserved.
            let take_arrival = match (&self.next_arrival, self.events.peek_key()) {
                (Some(r), Some(k)) => {
                    (r.arrival_s.to_bits(), ARRIVAL_CLASS) < (k.time_bits(), k.class())
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            // Emit any checkpoint boundary the clock is about to cross.
            // Boundaries land *between* event instants: the snapshot sees
            // every effect strictly before `boundary` and none at or
            // after it, so a same-instant tie never splits.
            if let Some(c) = ckpt.as_mut() {
                let t = if take_arrival {
                    self.next_arrival.as_ref().expect("checked above").arrival_s
                } else {
                    self.events.peek_key().expect("checked above").time_s()
                };
                loop {
                    let boundary = (c.emitted + 1) as f64 * c.every_s;
                    if t < boundary {
                        break;
                    }
                    c.emitted += 1;
                    let snap = self.capture(boundary, c.emitted);
                    if !(c.on_checkpoint)(&snap) {
                        return ServeOutcome::Halted {
                            checkpoints: c.emitted,
                            at_s: boundary,
                        };
                    }
                }
            }
            if take_arrival {
                let req = self.next_arrival.take().expect("checked above");
                self.next_arrival = self.pull_arrival();
                self.on_arrival(req);
                continue;
            }
            let (key, kind) = self.events.pop().expect("checked above");
            let now = key.time_s();
            match kind {
                EventKind::Fault(kind) => {
                    if self.obs.is_enabled() {
                        self.obs.record_instant(
                            track::DISPATCH,
                            now,
                            "fault",
                            vec![("chip", ArgValue::from(kind.chip()))],
                        );
                        self.obs.counter("serve.faults").add(1);
                    }
                    self.apply_fault(kind);
                    self.try_dispatch(now);
                }
                EventKind::Completion { chip } => {
                    self.chips[chip].busy = false;
                    self.try_dispatch(now);
                    self.autoscale_down(now);
                }
                EventKind::WarmedUp { chip } => {
                    self.chips[chip].warming = false;
                    self.try_dispatch(now);
                    // A chip that warmed into an already-drained burst
                    // parks again immediately.
                    self.autoscale_down(now);
                }
                EventKind::Timer => {
                    self.try_dispatch(now);
                }
            }
        }
        // Requests stranded in the queue (every chip offline or fully
        // degraded, no event left to free one) are shed, not an error:
        // the service degrades to whatever the surviving fleet completed.
        let stranded = self.queue.len() as u64;
        // Stranded sheds are scored at the run's end instant — it is ≥
        // every prior event time, so the alert clock stays monotone.
        let end_s = self.totals.max_finish_s.max(self.totals.last_arrival_s);
        while let Some(r) = self.queue.pop_front() {
            self.shed_request(r.class, end_s);
        }
        if stranded > 0 && self.obs.is_enabled() {
            self.obs.counter("serve.shed").add(stranded);
        }
        ServeOutcome::Completed(Box::new(self.finish()))
    }

    fn finish(mut self) -> ServiceReport {
        let obs = self.obs;
        self.totals.peak_event_queue = self.events.peak_len();
        // Close every open provisioned interval at the makespan, then
        // charge idle power (provisioned seconds minus busy seconds) when
        // the policy accounts for it. Under `AutoscalePolicy::None`
        // nothing here runs and chip energies are the legacy per-batch
        // sums, bit for bit.
        let accounts_idle = self.cfg.autoscale.accounts_idle();
        if accounts_idle {
            let end_s = self.totals.max_finish_s.max(self.totals.last_arrival_s);
            for (i, state) in self.chips.iter_mut().enumerate() {
                if !state.parked {
                    state.provisioned_s += end_s - state.provisioned_at_s;
                }
                let idle_s = (state.provisioned_s - state.busy_s).max(0.0);
                state.energy_j += self.fleet.chips[i].accel.idle_power_w() * idle_s;
            }
        }
        let per_chip: Vec<ChipReport> = self
            .fleet
            .chips
            .iter()
            .zip(&self.chips)
            .map(|(spec, state)| {
                let idle_s = (state.provisioned_s - state.busy_s).max(0.0);
                ChipReport {
                    name: spec.name.clone(),
                    served: state.served,
                    batches: state.batches,
                    busy_s: state.busy_s,
                    energy_j: state.energy_j,
                    online_at_end: state.online && spec.accel.compute_groups() > state.plcgs_down,
                    plcgs_down: state.plcgs_down,
                    provisioned_s: if accounts_idle {
                        state.provisioned_s
                    } else {
                        0.0
                    },
                    idle_energy_j: if accounts_idle {
                        spec.accel.idle_power_w() * idle_s
                    } else {
                        0.0
                    },
                    spin_ups: state.spin_ups,
                }
            })
            .collect();
        if obs.is_enabled() {
            obs.sketch("serve.latency_ms")
                .merge_from(&self.totals.latency_ms);
        }
        let report = ServiceReport::from_run(self.cfg, self.fleet, per_chip, self.totals);
        if obs.is_enabled() {
            obs.counter("serve.completed").add(report.completed);
            obs.gauge("serve.max_queue_depth")
                .set(report.max_queue_depth as f64);
            obs.gauge("serve.peak_event_queue")
                .set(report.peak_event_queue as f64);
            obs.gauge("serve.sketch_buckets")
                .set(report.sketch_buckets as f64);
            let util_h = obs.histogram("serve.chip_utilization");
            for chip in &report.per_chip {
                if report.makespan_s > 0.0 {
                    util_h.observe(chip.busy_s / report.makespan_s);
                }
            }
        }
        report
    }
}

/// Runs one serving simulation to completion.
pub fn simulate(fleet: &FleetConfig, cfg: &ServeConfig) -> ServiceReport {
    simulate_observed(fleet, cfg, &Obs::disabled())
}

/// [`simulate`], recording the run into `obs`: per-batch spans on each
/// chip's track (named after the batch's network), batch-formation /
/// shed / fault instants and queue-depth samples on the dispatcher
/// track, head-of-line wait and per-chip utilization histograms, the
/// end-to-end latency quantile sketch (`serve.latency_ms`), and serving
/// counters plus memory-bound gauges (`serve.peak_event_queue`,
/// `serve.sketch_buckets`). All timestamps come from the DES virtual
/// clock, so with a fixed seed the recorded trace is byte-reproducible.
///
/// The returned report is identical to [`simulate`]'s — instrumentation
/// only reads simulator state — and a disabled `obs` reduces every
/// record site to one branch.
pub fn simulate_observed(fleet: &FleetConfig, cfg: &ServeConfig, obs: &Obs) -> ServiceReport {
    new_sim(fleet, cfg, obs).run()
}

/// Builds a fresh simulation at virtual time zero: seeded stream, fault
/// events queued, arrival lookahead primed.
fn new_sim<'a>(fleet: &'a FleetConfig, cfg: &'a ServeConfig, obs: &'a Obs) -> Sim<'a> {
    assert!(!fleet.chips.is_empty(), "fleet must contain a chip");
    assert!(!fleet.models.is_empty(), "fleet must serve a network");
    // Chips beyond the elastic floor start parked; `min_chips` beyond the
    // fleet size just means a fully static fleet.
    let floor = match cfg.autoscale {
        AutoscalePolicy::Elastic { min_chips, .. } => {
            assert!(min_chips >= 1, "elastic floor must keep one chip up");
            min_chips.min(fleet.chips.len())
        }
        _ => fleet.chips.len(),
    };
    let stream = cfg.workload.stream(cfg.requests, cfg.seed);
    let classes = stream
        .classes()
        .iter()
        .map(|c| ClassTotals::new(&c.name, c.slo_ms))
        .collect();
    let mut sim = Sim {
        fleet,
        cfg,
        obs,
        oracle: ServiceOracle::new(),
        events: EventQueue::new(),
        seq: 0,
        queue: VecDeque::new(),
        chips: (0..fleet.chips.len())
            .map(|i| ChipState {
                online: true,
                plcgs_down: 0,
                busy: false,
                busy_s: 0.0,
                energy_j: 0.0,
                served: 0,
                batches: 0,
                parked: i >= floor,
                warming: false,
                provisioned_s: 0.0,
                provisioned_at_s: 0.0,
                spin_ups: 0,
            })
            .collect(),
        stream,
        next_arrival: None,
        totals: RunTotals::with_alerts(classes, cfg.alert),
    };
    for fault in cfg.faults.sorted_events() {
        sim.push(fault.at_s, EventKind::Fault(fault.kind));
    }
    sim.next_arrival = sim.pull_arrival();
    sim
}

/// Periodic checkpoint emission state for [`Sim::run_checkpointed`].
struct Checkpointer<'cb> {
    /// Virtual seconds between checkpoint boundaries.
    every_s: f64,
    /// Boundaries emitted so far (resume continues the count).
    emitted: u64,
    /// Receives each snapshot; returning `false` halts the run.
    on_checkpoint: &'cb mut dyn FnMut(&SimSnapshot) -> bool,
}

/// How a checkpointed serving run ended.
#[derive(Debug)]
pub enum ServeOutcome {
    /// The run finished; the report is identical to [`simulate`]'s.
    Completed(Box<ServiceReport>),
    /// The checkpoint callback returned `false` at this boundary; the
    /// snapshot it received is the resume point.
    Halted {
        /// Checkpoints emitted, including the halting one.
        checkpoints: u64,
        /// The boundary's virtual time, s.
        at_s: f64,
    },
}

/// FNV-1a over the fleet label and the full config — the identity a
/// snapshot is bound to. Resume with anything else is refused.
pub(crate) fn config_fingerprint(fleet: &FleetConfig, cfg: &ServeConfig) -> u64 {
    fnv1a(format!("{}|{:?}", fleet.label(), cfg).as_bytes())
}

/// Runs one serving simulation, emitting a [`SimSnapshot`] at every
/// multiple of `every_s` on the virtual clock. The callback returns
/// `true` to keep running or `false` to halt at that boundary (after,
/// e.g., persisting the snapshot). Reports from checkpointed runs are
/// byte-identical to [`simulate`]'s — checkpoints only read state.
pub fn simulate_checkpointed<F: FnMut(&SimSnapshot) -> bool>(
    fleet: &FleetConfig,
    cfg: &ServeConfig,
    every_s: f64,
    mut on_checkpoint: F,
) -> ServeOutcome {
    assert!(
        every_s > 0.0 && every_s.is_finite(),
        "checkpoint interval must be positive and finite"
    );
    let obs = Obs::disabled();
    let sim = new_sim(fleet, cfg, &obs);
    sim.run_checkpointed(Some(Checkpointer {
        every_s,
        emitted: 0,
        on_checkpoint: &mut on_checkpoint,
    }))
}

/// Resumes a run from a [`SimSnapshot`] captured by
/// [`simulate_checkpointed`] under the *same* fleet and config.
///
/// The workload stream is re-seeded and fast-forwarded `offered` draws,
/// then the regenerated lookahead is cross-checked bit for bit against
/// the snapshot's — a mismatched workload, seed, or request count is
/// an error, not a silently different run. `every_s > 0` continues
/// periodic checkpoints on the original boundary grid (it must equal
/// the interval the snapshot was taken on); `every_s == 0` runs to
/// completion without further checkpoints.
///
/// The resumed run's [`ServiceReport`] — including its digest and JSON
/// — is byte-identical to the uninterrupted run's.
pub fn resume_checkpointed<F: FnMut(&SimSnapshot) -> bool>(
    fleet: &FleetConfig,
    cfg: &ServeConfig,
    snapshot: &SimSnapshot,
    every_s: f64,
    mut on_checkpoint: F,
) -> Result<ServeOutcome, String> {
    if snapshot.requests != cfg.requests {
        return Err(format!(
            "snapshot was taken at {} requests, config asks for {}",
            snapshot.requests, cfg.requests
        ));
    }
    if snapshot.seed != cfg.seed {
        return Err(format!(
            "snapshot was taken with seed {}, config uses {}",
            snapshot.seed, cfg.seed
        ));
    }
    let expected = config_fingerprint(fleet, cfg);
    if snapshot.fingerprint != expected {
        return Err(format!(
            "snapshot fingerprint {:016x} does not match this fleet/config ({expected:016x}) — \
             resume needs the exact original fleet, workload, policy, and fault scenario",
            snapshot.fingerprint
        ));
    }
    if snapshot.chips.len() != fleet.chips.len() {
        return Err(format!(
            "snapshot holds {} chip(s), fleet has {}",
            snapshot.chips.len(),
            fleet.chips.len()
        ));
    }
    let mut stream = cfg.workload.stream(cfg.requests, cfg.seed);
    {
        let classes = stream.classes();
        if classes.len() != snapshot.totals.classes.len() {
            return Err(format!(
                "snapshot has {} request class(es), workload defines {}",
                snapshot.totals.classes.len(),
                classes.len()
            ));
        }
        for (spec, have) in classes.iter().zip(&snapshot.totals.classes) {
            if spec.name != have.name || spec.slo_ms != have.slo_ms {
                return Err(format!(
                    "request class `{}` does not match the snapshot's `{}`",
                    spec.name, have.name
                ));
            }
        }
    }
    // Fast-forward the stream past every arrival the snapshot consumed,
    // then cross-check the regenerated lookahead.
    for i in 0..snapshot.totals.offered {
        if stream.next().is_none() {
            return Err(format!(
                "workload stream ended after {i} request(s) while replaying {} — \
                 the workload does not match the snapshot",
                snapshot.totals.offered
            ));
        }
    }
    let regenerated = stream.next();
    if regenerated != snapshot.next_arrival {
        return Err(
            "replayed workload diverges from the snapshot's arrival lookahead — \
             the workload or seed does not match"
                .to_string(),
        );
    }
    let ckpt = if every_s > 0.0 {
        let grid_at = snapshot.checkpoints as f64 * every_s;
        if grid_at.to_bits() != snapshot.at_s.to_bits() {
            return Err(format!(
                "checkpoint interval {} s is off the snapshot's grid (checkpoint {} at {} s) — \
                 resume with the original --checkpoint-every",
                every_s, snapshot.checkpoints, snapshot.at_s
            ));
        }
        Some(Checkpointer {
            every_s,
            emitted: snapshot.checkpoints,
            on_checkpoint: &mut on_checkpoint,
        })
    } else {
        None
    };
    let entries = snapshot
        .events
        .iter()
        .map(|(time_bits, class, seq, kind)| {
            (EventKey::new(*time_bits, *class, *seq), kind.clone())
        })
        .collect();
    let obs = Obs::disabled();
    let sim = Sim {
        fleet,
        cfg,
        obs: &obs,
        oracle: ServiceOracle::new(),
        events: EventQueue::from_sorted(entries, snapshot.peak_event_queue),
        seq: snapshot.seq,
        queue: snapshot.queue.iter().cloned().collect(),
        chips: snapshot.chips.clone(),
        stream,
        next_arrival: snapshot.next_arrival.clone(),
        totals: snapshot.totals.clone(),
    };
    Ok(sim.run_checkpointed(ckpt))
}

/// `(track, label)` pairs for every track a traced serving run uses —
/// the dispatcher, the engine, and one per chip (labelled
/// `chipN:<name>`). Feed to [`albireo_obs::to_chrome_trace`] so viewers
/// name the rows.
pub fn trace_track_names(fleet: &FleetConfig) -> Vec<(u32, String)> {
    let mut names = vec![
        (track::DISPATCH, "dispatch".to_string()),
        (track::ENGINE, "engine".to_string()),
    ];
    for (i, chip) in fleet.chips.iter().enumerate() {
        names.push((
            track::CHIP_BASE + i as u32,
            format!("chip{i}:{}", chip.name),
        ));
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use crate::workload::ClassSpec;

    fn small_fleet() -> FleetConfig {
        FleetConfig::paper_pair()
    }

    #[test]
    fn observed_run_matches_plain_run_exactly() {
        let fleet = small_fleet();
        let cfg = ServeConfig::poisson(3000.0, 300, 42, 0);
        let obs = Obs::enabled();
        let observed = simulate_observed(&fleet, &cfg, &obs);
        let plain = simulate(&fleet, &cfg);
        assert_eq!(observed, plain, "instrumentation must not change results");
        assert!(!obs.drain_events().is_empty());
    }

    #[test]
    fn trace_spans_are_balanced_with_nondecreasing_time() {
        let fleet = small_fleet();
        let cfg = ServeConfig::poisson(3000.0, 300, 42, 0);
        let obs = Obs::enabled();
        simulate_observed(&fleet, &cfg, &obs);
        let events = obs.drain_events();
        assert!(events.windows(2).all(|w| w[0].ts_s <= w[1].ts_s));
        // Every Begin has an End on its track, and depth never dips
        // below zero in drain order.
        let mut depth: std::collections::BTreeMap<u32, i64> = std::collections::BTreeMap::new();
        for e in &events {
            match e.phase {
                albireo_obs::Phase::Begin => *depth.entry(e.track).or_insert(0) += 1,
                albireo_obs::Phase::End => {
                    let d = depth.entry(e.track).or_insert(0);
                    *d -= 1;
                    assert!(*d >= 0, "unbalanced End on track {}", e.track);
                }
                _ => {}
            }
        }
        assert!(depth.values().all(|&d| d == 0), "unclosed spans: {depth:?}");
    }

    #[test]
    fn trace_digest_is_reproducible_and_wall_clock_neutral() {
        let fleet = small_fleet();
        let cfg = ServeConfig::poisson(3000.0, 300, 42, 0);
        let digest = |wall: bool| {
            let obs = Obs::enabled();
            obs.set_wall_clock(wall);
            simulate_observed(&fleet, &cfg, &obs);
            albireo_obs::events_digest(&obs.drain_events())
        };
        assert_eq!(digest(false), digest(false));
        assert_eq!(digest(false), digest(true), "wall clock must not leak");
    }

    #[test]
    fn serving_metrics_cover_the_run() {
        let fleet = small_fleet();
        let mut cfg = ServeConfig::poisson(50_000.0, 400, 5, 1);
        cfg.admission = AdmissionControl::bounded(16);
        let obs = Obs::enabled();
        let report = simulate_observed(&fleet, &cfg, &obs);
        let snap = obs.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(counter("serve.completed"), report.completed);
        assert_eq!(counter("serve.shed"), report.shed);
        assert_eq!(counter("serve.dispatched"), report.completed);
        let wait = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "serve.wait_s")
            .map(|(_, h)| h.clone())
            .unwrap();
        assert_eq!(wait.count(), report.completed);
        let util = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "serve.chip_utilization")
            .map(|(_, h)| h.clone())
            .unwrap();
        assert_eq!(util.count(), fleet.chips.len() as u64);
        assert!(util.max().unwrap() <= 1.0 + 1e-9);
        // The latency sketch rides along in the obs registry.
        let sketch = snap
            .sketches
            .iter()
            .find(|(n, _)| n == "serve.latency_ms")
            .map(|(_, s)| s.clone())
            .unwrap();
        assert_eq!(sketch.count(), report.completed);
    }

    #[test]
    fn display_impls_are_single_line_summaries() {
        let fleet = small_fleet();
        let cfg = ServeConfig::poisson(3000.0, 300, 42, 0);
        let f = format!("{fleet}");
        let c = format!("{cfg}");
        assert!(!f.contains('\n') && !c.contains('\n'));
        assert!(f.contains("2 chip(s)"));
        assert!(c.contains("seed 42"));
        assert!(c.contains("poisson"));
    }

    #[test]
    fn trace_track_names_cover_every_chip() {
        let fleet = small_fleet();
        let names = trace_track_names(&fleet);
        assert_eq!(names.len(), 2 + fleet.chips.len());
        assert!(names
            .iter()
            .any(|(t, n)| *t == track::DISPATCH && n == "dispatch"));
        assert!(names
            .iter()
            .any(|(t, n)| *t == track::CHIP_BASE && n.starts_with("chip0:")));
    }

    #[test]
    fn every_offered_request_is_completed_or_shed() {
        let fleet = small_fleet();
        let cfg = ServeConfig::poisson(5000.0, 400, 7, 0);
        let report = simulate(&fleet, &cfg);
        assert_eq!(report.offered, 400);
        assert_eq!(report.completed + report.shed, 400);
        assert!(report.completed > 0);
    }

    #[test]
    fn runs_are_reproducible() {
        let fleet = small_fleet();
        let cfg = ServeConfig::poisson(3000.0, 300, 42, 0);
        let a = simulate(&fleet, &cfg);
        let b = simulate(&fleet, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn latencies_are_causal_and_ordered() {
        let fleet = small_fleet();
        let cfg = ServeConfig::poisson(2000.0, 200, 3, 1);
        let report = simulate(&fleet, &cfg);
        for r in &report.records {
            assert!(r.start_s >= r.arrival_s);
            assert!(r.finish_s > r.start_s);
        }
        assert!(report.p50_ms > 0.0);
        assert!(report.p50_ms <= report.p95_ms);
        assert!(report.p95_ms <= report.p99_ms);
        assert!(report.p99_ms <= report.p999_ms);
    }

    #[test]
    fn overload_sheds_instead_of_queueing_forever() {
        let fleet = small_fleet();
        // VGG16 at ~2.9 ms/inference on two chips sustains well under
        // 1000 rps; offering 50k rps must shed hard.
        let mut cfg = ServeConfig::poisson(50_000.0, 500, 5, 1);
        cfg.admission = AdmissionControl::bounded(16);
        let report = simulate(&fleet, &cfg);
        assert!(report.shed > 0, "expected shedding under overload");
        assert!(report.shed_rate > 0.3, "shed rate {}", report.shed_rate);
        assert!(report.completed > 0);
    }

    #[test]
    fn batching_amortizes_setup_for_small_networks() {
        let fleet = small_fleet();
        // AlexNet has a ~31% weight-programming overhead per dispatch:
        // size-8 micro-batching must beat immediate dispatch on energy
        // per request and sustain a backlog with less total busy time.
        let mut immediate = ServeConfig::poisson(12_000.0, 600, 11, 0);
        immediate.admission = AdmissionControl::unbounded();
        let mut batched = immediate.clone();
        batched.policy = BatchPolicy::SizeN { size: 8 };
        let a = simulate(&fleet, &immediate);
        let b = simulate(&fleet, &batched);
        assert_eq!(a.completed, 600);
        assert_eq!(b.completed, 600);
        assert!(
            b.energy_per_request_j < a.energy_per_request_j,
            "batched {} vs immediate {}",
            b.energy_per_request_j,
            a.energy_per_request_j
        );
        assert!(b.mean_batch_size > 2.0);
    }

    #[test]
    fn deadline_policy_bounds_head_waiting() {
        let fleet = small_fleet();
        let mut cfg = ServeConfig::poisson(100.0, 50, 13, 0);
        cfg.policy = BatchPolicy::Deadline {
            max_wait_s: 200e-6,
            max_size: 8,
        };
        cfg.admission = AdmissionControl::unbounded();
        let report = simulate(&fleet, &cfg);
        assert_eq!(report.completed, 50);
        // At 100 rps the stream is sparse: batches time out rather than
        // fill, and no request waits unboundedly for batch-mates.
        for r in &report.records {
            let wait = r.start_s - r.arrival_s;
            assert!(
                wait <= 201e-6 + 8.0 * 0.2e-3 + 1e-6,
                "request {} waited {wait}",
                r.id
            );
        }
    }

    #[test]
    fn chip_failure_degrades_gracefully() {
        let fleet = small_fleet();
        let mut cfg = ServeConfig::poisson(2000.0, 400, 17, 0);
        cfg.faults = FaultScenario::none().with(0.02, FaultKind::ChipOffline { chip: 1 });
        let healthy = simulate(&fleet, &ServeConfig::poisson(2000.0, 400, 17, 0));
        let faulty = simulate(&fleet, &cfg);
        assert!(faulty.completed > 0, "goodput must stay nonzero");
        assert!(faulty.goodput_rps > 0.0);
        assert!(
            faulty.per_chip[1].served <= healthy.per_chip[1].served,
            "offline chip cannot serve more"
        );
        assert!(!faulty.per_chip[1].online_at_end);
    }

    #[test]
    fn total_fleet_loss_sheds_the_remainder_without_error() {
        let fleet = small_fleet();
        let mut cfg = ServeConfig::poisson(2000.0, 300, 19, 0);
        cfg.faults = FaultScenario::none()
            .with(0.01, FaultKind::ChipOffline { chip: 0 })
            .with(0.01, FaultKind::ChipOffline { chip: 1 });
        let report = simulate(&fleet, &cfg);
        assert_eq!(report.completed + report.shed, 300);
        assert!(report.completed > 0, "work before the failure completes");
        assert!(report.shed > 0, "work after the failure is shed");
    }

    #[test]
    fn plcg_degradation_slows_but_keeps_serving() {
        let fleet = small_fleet();
        let mut cfg = ServeConfig::poisson(1500.0, 300, 23, 1);
        cfg.faults = FaultScenario::none().with(0.0, FaultKind::PlcgOffline { chip: 0, count: 6 });
        let healthy = simulate(&fleet, &ServeConfig::poisson(1500.0, 300, 23, 1));
        let degraded = simulate(&fleet, &cfg);
        assert_eq!(degraded.completed + degraded.shed, 300);
        assert!(degraded.completed > 0);
        assert!(
            degraded.p99_ms >= healthy.p99_ms,
            "degradation cannot improve tails: {} < {}",
            degraded.p99_ms,
            healthy.p99_ms
        );
        assert!(degraded.per_chip[0].plcgs_down == 6);
    }

    #[test]
    fn chip_recovery_restores_capacity() {
        let fleet = small_fleet();
        let mut cfg = ServeConfig::poisson(2000.0, 400, 29, 0);
        cfg.faults = FaultScenario::none()
            .with(0.01, FaultKind::ChipOffline { chip: 1 })
            .with(0.05, FaultKind::ChipOnline { chip: 1 });
        let report = simulate(&fleet, &cfg);
        assert_eq!(report.completed, 400 - report.shed);
        assert!(report.per_chip[1].online_at_end);
        assert!(report.per_chip[1].served > 0);
    }

    #[test]
    fn utilization_is_bounded_and_energy_positive() {
        let fleet = small_fleet();
        let report = simulate(&fleet, &ServeConfig::poisson(4000.0, 300, 31, 0));
        for chip in &report.per_chip {
            let util = chip.busy_s / report.makespan_s;
            assert!((0.0..=1.0 + 1e-9).contains(&util), "utilization {util}");
        }
        assert!(report.energy_per_request_j > 0.0);
        assert!(report.mean_batch_size >= 1.0);
    }

    #[test]
    fn heterogeneous_fleet_serves_end_to_end() {
        let fleet = FleetConfig::parse(
            "albireo_27:A, deap:M, eyeriss",
            albireo_nn::zoo::all_benchmarks(),
        )
        .unwrap();
        let mut cfg = ServeConfig::poisson(2000.0, 300, 41, 0);
        cfg.workload.mix = vec![(0, 1.0), (1, 1.0)];
        let a = simulate(&fleet, &cfg);
        let b = simulate(&fleet, &cfg);
        assert_eq!(a, b, "mixed fleets must stay deterministic");
        assert_eq!(a.completed + a.shed, 300);
        assert!(a.completed > 0);
        assert!(
            a.per_chip[0].served > 0,
            "the fast Albireo chip should pick up work"
        );
    }

    #[test]
    fn unsupported_networks_never_land_on_reported_chips() {
        // Eyeriss reports AlexNet/VGG16 only; ResNet18 and MobileNetV1
        // requests must route past it to the Albireo chip.
        let fleet =
            FleetConfig::parse("eyeriss, albireo_9:C", albireo_nn::zoo::all_benchmarks()).unwrap();
        let mut cfg = ServeConfig::poisson(1500.0, 200, 43, 0);
        cfg.workload.mix = vec![(0, 1.0), (2, 1.0), (3, 1.0)];
        let report = simulate(&fleet, &cfg);
        assert_eq!(report.completed + report.shed, 200);
        for r in &report.records {
            if r.chip == 0 {
                assert_eq!(r.network, 0, "eyeriss served network {}", r.network);
            }
        }
        let resnet_served = report.records.iter().filter(|r| r.network == 2).count();
        assert!(
            resnet_served > 0,
            "albireo must absorb unsupported networks"
        );
    }

    #[test]
    fn mixed_network_batches_stay_single_network() {
        let fleet = small_fleet();
        let mut cfg = ServeConfig::poisson(8000.0, 400, 37, 0);
        cfg.workload.mix = vec![(0, 1.0), (3, 1.0)];
        cfg.policy = BatchPolicy::SizeN { size: 4 };
        cfg.admission = AdmissionControl::unbounded();
        let report = simulate(&fleet, &cfg);
        // Group records by (chip, start): each dispatch must be
        // single-network.
        use std::collections::BTreeMap;
        let mut batches: BTreeMap<(usize, u64), Vec<usize>> = BTreeMap::new();
        for r in &report.records {
            batches
                .entry((r.chip, r.start_s.to_bits()))
                .or_default()
                .push(r.network);
        }
        for (key, networks) in batches {
            assert!(
                networks.windows(2).all(|w| w[0] == w[1]),
                "mixed batch at {key:?}: {networks:?}"
            );
        }
    }

    #[test]
    fn record_cap_bounds_the_sample_but_not_the_metrics() {
        let fleet = small_fleet();
        let full = ServeConfig::poisson(3000.0, 300, 42, 0);
        let mut capped = full.clone();
        capped.record_cap = 10;
        let a = simulate(&fleet, &full);
        let b = simulate(&fleet, &capped);
        assert_eq!(b.records.len(), 10);
        assert_eq!(a.records[..10], b.records[..]);
        assert_eq!(a.digest(), b.digest(), "digest covers all records");
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.p99_ms, b.p99_ms);
        assert_eq!(a.mean_latency_ms, b.mean_latency_ms);
    }

    #[test]
    fn per_class_slo_reports_cover_all_traffic() {
        let fleet = small_fleet();
        let mut cfg = ServeConfig::poisson(4000.0, 500, 42, 0);
        cfg.workload = cfg.workload.with_classes(vec![
            ClassSpec::with_slo("interactive", 3.0, 5.0),
            ClassSpec::best_effort("batch", 1.0),
        ]);
        cfg.admission = AdmissionControl::bounded(32);
        let report = simulate(&fleet, &cfg);
        assert_eq!(report.classes.len(), 2);
        let total: u64 = report.classes.iter().map(|c| c.completed + c.shed).sum();
        assert_eq!(total, report.offered, "classes partition the traffic");
        let interactive = &report.classes[0];
        assert!(interactive.completed > 0);
        let att = interactive.slo_attainment.expect("has an SLO");
        assert!((0.0..=1.0).contains(&att), "attainment {att}");
        assert_eq!(report.classes[1].slo_attainment, None, "best-effort");
        assert!(report.to_json().contains("\"interactive\""));
    }

    #[test]
    fn classless_run_digest_is_unchanged_by_class_machinery() {
        // The class plumbing must be invisible when no classes are
        // configured: same digest as a pre-class-era run (pinned by the
        // golden CSV) and an empty classes section.
        let fleet = small_fleet();
        let report = simulate(&fleet, &ServeConfig::poisson(3000.0, 300, 42, 0));
        assert!(report.classes.is_empty());
        assert!(report.to_json().contains("\"classes\": [\n  ],"));
    }

    #[test]
    fn autoscale_none_is_byte_identical_to_the_legacy_engine() {
        // `AutoscalePolicy::None` is the default on every constructor;
        // a config that sets it explicitly must not move the digest.
        let fleet = small_fleet();
        let base = ServeConfig::poisson(3000.0, 300, 42, 0);
        let mut explicit = base.clone();
        explicit.autoscale = AutoscalePolicy::None;
        let a = simulate(&fleet, &base);
        let b = simulate(&fleet, &explicit);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert!(a
            .per_chip
            .iter()
            .all(|c| c.provisioned_s == 0.0 && c.idle_energy_j == 0.0 && c.spin_ups == 0));
    }

    #[test]
    fn static_provisioning_charges_the_photonic_idle_floor() {
        let fleet = small_fleet();
        let base = ServeConfig::poisson(2000.0, 200, 7, 0);
        let mut accounted = base.clone();
        accounted.autoscale = AutoscalePolicy::Static;
        let legacy = simulate(&fleet, &base);
        let s = simulate(&fleet, &accounted);
        // Same service decisions: only the energy account changes.
        assert_eq!(s.completed, legacy.completed);
        assert_eq!(s.p99_ms, legacy.p99_ms);
        assert!(s.energy_total_j > legacy.energy_total_j);
        for c in &s.per_chip {
            assert!((c.provisioned_s - s.makespan_s).abs() < 1e-12);
            assert!(c.idle_energy_j > 0.0, "idle floor must be charged");
        }
        let idle: f64 = s.per_chip.iter().map(|c| c.idle_energy_j).sum();
        assert!((s.energy_total_j - legacy.energy_total_j - idle).abs() < 1e-9);
    }

    #[test]
    fn elastic_floor_parks_spare_chips_and_spins_up_under_load() {
        let fleet = small_fleet();
        // Rate high enough that one albireo_9 falls behind AlexNet
        // (~0.46 ms/req incl. setup): the queue backs up past the
        // up-depth and chip 1 spins up with a 200 µs warm-up.
        let mut cfg = ServeConfig::poisson(6000.0, 400, 11, 0);
        cfg.admission = AdmissionControl::unbounded();
        cfg.autoscale = AutoscalePolicy::Elastic {
            up_depth: 4,
            warmup_s: 200e-6,
            min_chips: 1,
        };
        let report = simulate(&fleet, &cfg);
        assert_eq!(report.completed, 400);
        assert!(
            report.per_chip[1].spin_ups > 0,
            "overload must spin up the parked chip"
        );
        assert!(report.per_chip[1].served > 0);
        // The parked chip is provisioned for less than the run.
        assert!(report.per_chip[1].provisioned_s < report.makespan_s);
        assert!(report.per_chip[0].provisioned_s >= report.per_chip[1].provisioned_s);
    }

    #[test]
    fn warming_chips_are_unavailable_until_warmed() {
        let fleet = small_fleet();
        let mut cfg = ServeConfig::poisson(6000.0, 300, 11, 0);
        cfg.admission = AdmissionControl::unbounded();
        // Warm-up far beyond the run horizon: the spare chip spins up
        // but never becomes serviceable.
        cfg.autoscale = AutoscalePolicy::Elastic {
            up_depth: 4,
            warmup_s: 1e6,
            min_chips: 1,
        };
        let report = simulate(&fleet, &cfg);
        assert_eq!(report.completed, 300);
        assert_eq!(report.per_chip[1].served, 0, "warming chip cannot serve");
        assert!(report.per_chip[1].spin_ups > 0);
        assert_eq!(report.per_chip[0].served, 300);
    }

    #[test]
    fn elastic_beats_static_on_energy_at_matched_service() {
        // The planner's headline scenario, at engine level: a fleet
        // sized for peaks pays the photonic idle floor all run under
        // Static; Elastic parks the spare chip off-peak and spends
        // strictly less energy while completing the same requests.
        let fleet = small_fleet();
        let mut base = ServeConfig::poisson(1500.0, 300, 13, 0);
        base.admission = AdmissionControl::unbounded();
        let mut stat = base.clone();
        stat.autoscale = AutoscalePolicy::Static;
        let mut elastic = base.clone();
        elastic.autoscale = AutoscalePolicy::Elastic {
            up_depth: 8,
            warmup_s: 500e-6,
            min_chips: 1,
        };
        let s = simulate(&fleet, &stat);
        let e = simulate(&fleet, &elastic);
        assert_eq!(s.completed, 300);
        assert_eq!(e.completed, 300);
        assert!(
            e.energy_total_j < s.energy_total_j,
            "elastic {} J vs static {} J",
            e.energy_total_j,
            s.energy_total_j
        );
    }

    #[test]
    fn display_mentions_autoscale_only_when_configured() {
        let mut cfg = ServeConfig::poisson(3000.0, 300, 42, 0);
        assert!(!format!("{cfg}").contains("autoscale"));
        cfg.autoscale = AutoscalePolicy::Elastic {
            up_depth: 4,
            warmup_s: 0.0005,
            min_chips: 1,
        };
        let line = format!("{cfg}");
        assert!(line.contains("autoscale elastic:4:0.0005:1"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn display_header_covers_the_full_config() {
        // Golden diagnostic header: every newer serve dimension (fault
        // span, classes with SLOs, alert policy, record cap, autoscale)
        // shows up, on one line, exactly once.
        let mut cfg = ServeConfig::poisson(3000.0, 300, 42, 0);
        let base = format!("{cfg}");
        assert_eq!(
            base,
            "poisson arrivals @ 3000 rps, 300 requests, seed 42, \
             policy immediate, queue 64, 0 fault(s)",
            "the classic header must stay byte-stable"
        );
        cfg.workload = cfg.workload.with_classes(vec![
            ClassSpec::with_slo("interactive", 3.0, 5.0),
            ClassSpec::best_effort("batch", 1.0),
        ]);
        cfg.faults = FaultScenario::none()
            .with(0.02, FaultKind::ChipOffline { chip: 1 })
            .with(0.05, FaultKind::ChipOnline { chip: 1 });
        cfg.record_cap = 64;
        cfg.autoscale = AutoscalePolicy::Static;
        let line = format!("{cfg}");
        assert_eq!(
            line,
            "poisson arrivals @ 3000 rps, 300 requests, seed 42, \
             policy immediate, queue 64, 2 fault(s) in [0.020, 0.050] s, \
             classes interactive<5ms+batch, \
             alerts slo 0.999 fast 300/3600x14.4 slow 21600/259200x6, \
             record cap 64, autoscale static"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn burn_rate_alerts_fire_deterministically() {
        // An overloaded bounded queue sheds interactive traffic: every
        // shed burns the error budget, so the burn-rate rules fire.
        let fleet = small_fleet();
        let mut cfg = ServeConfig::poisson(60_000.0, 800, 42, 0);
        cfg.workload = cfg.workload.with_classes(vec![
            ClassSpec::with_slo("interactive", 3.0, 5.0),
            ClassSpec::best_effort("batch", 1.0),
        ]);
        cfg.admission = AdmissionControl::bounded(16);
        let a = simulate(&fleet, &cfg);
        assert!(a.shed > 0, "the scenario must overload the fleet");
        assert!(
            !a.alert_events.is_empty(),
            "sustained SLO misses must fire an alert"
        );
        assert!(a.classes[0].alerts_fired > 0);
        assert!(a.alert_events[0].fire);
        assert_eq!(
            a.classes[1].alerts_fired, 0,
            "best-effort classes never alert"
        );
        let json = a.to_json();
        assert!(json.contains("\"alerts\": {"));
        assert!(json.contains("\"rule\": \"fast\""));
        assert!(a.render_text().contains("FIRE"));
        // Bit-stable across repetitions, and the digest ignores the
        // alerting policy entirely.
        let b = simulate(&fleet, &cfg);
        assert_eq!(a.alert_events, b.alert_events);
        assert_eq!(a.to_json(), b.to_json());
        let mut relaxed = cfg.clone();
        relaxed.alert = AlertPolicy::with_target(0.5);
        let c = simulate(&fleet, &relaxed);
        assert_eq!(a.digest(), c.digest(), "policy must not move the digest");
        assert_ne!(a.alert_events, c.alert_events);
    }

    #[test]
    fn alert_state_survives_interrupt_and_resume_byte_exactly() {
        let fleet = small_fleet();
        let mut cfg = ServeConfig::poisson(60_000.0, 800, 42, 0);
        cfg.workload = cfg.workload.with_classes(vec![
            ClassSpec::with_slo("interactive", 3.0, 5.0),
            ClassSpec::best_effort("batch", 1.0),
        ]);
        cfg.admission = AdmissionControl::bounded(16);
        let baseline = simulate(&fleet, &cfg);
        assert!(!baseline.alert_events.is_empty());
        let mut snaps: Vec<SimSnapshot> = Vec::new();
        let out = simulate_checkpointed(&fleet, &cfg, 0.002, |s| {
            snaps.push(s.clone());
            true
        });
        let ServeOutcome::Completed(full) = out else {
            panic!("run must complete");
        };
        assert_eq!(*full, baseline, "checkpointing must not perturb alerts");
        assert!(snaps.len() >= 2);
        assert!(
            snaps.iter().any(|s| !s.totals.alerts.events.is_empty()),
            "some boundary must land after the first alert"
        );
        for snap in &snaps {
            let text = snap.to_text();
            assert!(text.contains("\nalerts "), "alert section present");
            let restored = SimSnapshot::parse(&text).unwrap();
            assert_eq!(&restored, snap, "alert state round-trips the wire");
            let out = resume_checkpointed(&fleet, &cfg, &restored, 0.0, |_| true).unwrap();
            let ServeOutcome::Completed(resumed) = out else {
                panic!("resume must complete");
            };
            assert_eq!(resumed.alert_events, baseline.alert_events);
            assert_eq!(resumed.to_json(), baseline.to_json());
        }
    }

    #[test]
    fn classless_snapshots_keep_the_prealerting_wire_format() {
        let fleet = small_fleet();
        let cfg = ServeConfig::poisson(3000.0, 200, 42, 0);
        let mut snaps = Vec::new();
        simulate_checkpointed(&fleet, &cfg, 0.01, |s| {
            snaps.push(s.to_text());
            true
        });
        assert!(!snaps.is_empty());
        for text in &snaps {
            assert!(
                !text.contains("\nalerts "),
                "classless snapshots must not grow an alert section"
            );
            SimSnapshot::parse(text).unwrap();
        }
    }

    #[test]
    fn checkpoint_resume_reports_are_byte_identical() {
        let fleet = small_fleet();
        let mut cfg = ServeConfig::poisson(3000.0, 400, 42, 0);
        cfg.faults = FaultScenario::none()
            .with(0.02, FaultKind::ChipOffline { chip: 1 })
            .with(0.05, FaultKind::ChipOnline { chip: 1 });
        let baseline = simulate(&fleet, &cfg);
        let every = 0.01;
        let mut snaps: Vec<SimSnapshot> = Vec::new();
        let out = simulate_checkpointed(&fleet, &cfg, every, |s| {
            snaps.push(s.clone());
            true
        });
        let ServeOutcome::Completed(full) = out else {
            panic!("run must complete");
        };
        assert_eq!(*full, baseline, "checkpointing must not perturb the run");
        assert!(snaps.len() >= 3, "expected several boundaries");
        for snap in &snaps {
            // Through the wire format, then to completion without further
            // checkpoints: byte-identical report, digest, and JSON.
            let restored = SimSnapshot::parse(&snap.to_text()).unwrap();
            assert_eq!(&restored, snap);
            let out = resume_checkpointed(&fleet, &cfg, &restored, 0.0, |_| true).unwrap();
            let ServeOutcome::Completed(resumed) = out else {
                panic!("resume must complete");
            };
            assert_eq!(*resumed, baseline);
            assert_eq!(resumed.digest(), baseline.digest());
            assert_eq!(resumed.to_json(), baseline.to_json());
        }
        // Resuming on the original cadence replays the remaining
        // boundaries exactly.
        let mut tail: Vec<SimSnapshot> = Vec::new();
        let out = resume_checkpointed(&fleet, &cfg, &snaps[0], every, |s| {
            tail.push(s.clone());
            true
        })
        .unwrap();
        assert!(matches!(out, ServeOutcome::Completed(_)));
        assert_eq!(tail, snaps[1..]);
    }

    #[test]
    fn halting_returns_the_boundary_and_resume_finishes_the_run() {
        let fleet = small_fleet();
        let cfg = ServeConfig::poisson(3000.0, 300, 7, 0);
        let baseline = simulate(&fleet, &cfg);
        let mut last = None;
        let out = simulate_checkpointed(&fleet, &cfg, 0.02, |s| {
            last = Some(s.clone());
            s.checkpoints() < 2
        });
        let ServeOutcome::Halted { checkpoints, at_s } = out else {
            panic!("expected a halt");
        };
        assert_eq!(checkpoints, 2);
        assert_eq!(at_s, 0.04);
        let snap = last.unwrap();
        assert_eq!(snap.checkpoints(), 2);
        assert!(snap.offered() > 0 && snap.offered() < 300);
        let out = resume_checkpointed(&fleet, &cfg, &snap, 0.02, |_| true).unwrap();
        let ServeOutcome::Completed(resumed) = out else {
            panic!("resume must complete");
        };
        assert_eq!(*resumed, baseline);
    }

    #[test]
    fn resume_rejects_mismatched_configurations() {
        let fleet = small_fleet();
        let cfg = ServeConfig::poisson(3000.0, 300, 42, 0);
        let mut snap = None;
        let _ = simulate_checkpointed(&fleet, &cfg, 0.02, |s| {
            snap = Some(s.clone());
            false
        });
        let snap = snap.unwrap();
        let mut wrong_seed = cfg.clone();
        wrong_seed.seed = 43;
        assert!(resume_checkpointed(&fleet, &wrong_seed, &snap, 0.0, |_| true).is_err());
        let mut wrong_requests = cfg.clone();
        wrong_requests.requests = 400;
        assert!(resume_checkpointed(&fleet, &wrong_requests, &snap, 0.0, |_| true).is_err());
        let mut wrong_policy = cfg.clone();
        wrong_policy.policy = BatchPolicy::SizeN { size: 4 };
        let err = resume_checkpointed(&fleet, &wrong_policy, &snap, 0.0, |_| true).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
        // An off-grid interval is refused; the original cadence works.
        assert!(resume_checkpointed(&fleet, &cfg, &snap, 0.03, |_| true).is_err());
        assert!(resume_checkpointed(&fleet, &cfg, &snap, 0.02, |_| true).is_ok());
    }

    #[test]
    fn resume_covers_classes_autoscale_and_correlated_faults() {
        use crate::fault::FaultSpec;
        let fleet = small_fleet();
        let mut cfg = ServeConfig::poisson(6000.0, 500, 11, 0);
        cfg.workload = cfg.workload.with_classes(vec![
            ClassSpec::with_slo("interactive", 3.0, 5.0),
            ClassSpec::best_effort("batch", 1.0),
        ]);
        cfg.admission = AdmissionControl::bounded(64);
        cfg.autoscale = AutoscalePolicy::Elastic {
            up_depth: 4,
            warmup_s: 200e-6,
            min_chips: 1,
        };
        cfg.faults = FaultSpec::parse("thermal:0-1@0.01-0.03:2,fail:0@0.02,crews:1:0.02:9")
            .unwrap()
            .compile(fleet.chips.len());
        let baseline = simulate(&fleet, &cfg);
        let mut snaps: Vec<SimSnapshot> = Vec::new();
        let out = simulate_checkpointed(&fleet, &cfg, 0.005, |s| {
            snaps.push(s.clone());
            true
        });
        let ServeOutcome::Completed(full) = out else {
            panic!("run must complete");
        };
        assert_eq!(*full, baseline);
        assert!(!snaps.is_empty());
        for snap in &snaps {
            let restored = SimSnapshot::parse(&snap.to_text()).unwrap();
            let out = resume_checkpointed(&fleet, &cfg, &restored, 0.0, |_| true).unwrap();
            let ServeOutcome::Completed(resumed) = out else {
                panic!("resume must complete");
            };
            assert_eq!(*resumed, baseline);
            assert_eq!(resumed.to_json(), baseline.to_json());
        }
    }

    #[test]
    fn event_queue_stays_shallow_with_streamed_arrivals() {
        // The historical engine held every arrival in the heap, so peak
        // depth was O(requests). Streamed arrivals keep it at
        // O(fleet + faults + pending timers).
        let fleet = small_fleet();
        let report = simulate(&fleet, &ServeConfig::poisson(3000.0, 2000, 42, 0));
        assert_eq!(report.offered, 2000);
        assert!(
            report.peak_event_queue < 32,
            "peak event queue {} should not scale with requests",
            report.peak_event_queue
        );
        assert!(report.sketch_buckets > 0);
    }
}

//! The service side of the simulator: a fleet of Albireo chips plus the
//! per-request service-time oracle.
//!
//! Service times and energies are *not* invented here — they come from
//! the validated performance models: `albireo_core::sched` supplies the
//! cycle count of one inference (Algorithm 2 dataflow), and the Table III
//! power model supplies the energy, via
//! [`NetworkEvaluation`](albireo_core::energy::NetworkEvaluation). The
//! one serving-specific term is the **batch setup time**: Albireo's
//! depth-first dataflow reprograms every weight DAC once per inference,
//! so consecutive same-network inferences in a micro-batch share one
//! weight-programming pass. Setup is modelled as streaming the network's
//! parameters through the chip's weight DACs at the converter clock:
//! `setup_s = total_params / (dacs × clock)` — ~31% of AlexNet's
//! inference latency, ~3% of VGG16's, which is exactly why batching pays
//! on small networks.

use albireo_core::config::{ChipConfig, TechnologyEstimate};
use albireo_core::energy::NetworkEvaluation;
use albireo_core::inventory::DeviceInventory;
use albireo_nn::{zoo, Model};
use std::collections::BTreeMap;

/// One chip in the fleet: a named configuration plus the technology
/// estimate its devices are built from.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSpec {
    /// Display name (e.g. `albireo_9`).
    pub name: String,
    /// Chip geometry.
    pub chip: ChipConfig,
    /// Device-technology estimate (sets clock and power).
    pub estimate: TechnologyEstimate,
}

impl ChipSpec {
    /// The paper's 9-PLCG chip under an estimate.
    pub fn albireo_9(estimate: TechnologyEstimate) -> ChipSpec {
        ChipSpec {
            name: "albireo_9".to_string(),
            chip: ChipConfig::albireo_9(),
            estimate,
        }
    }

    /// The paper's 27-PLCG chip under an estimate.
    pub fn albireo_27(estimate: TechnologyEstimate) -> ChipSpec {
        ChipSpec {
            name: "albireo_27".to_string(),
            chip: ChipConfig::albireo_27(),
            estimate,
        }
    }
}

/// The fleet: chips plus the model table network indices refer to.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// The chips, in dispatch-preference order (ties in availability go to
    /// the lowest index).
    pub chips: Vec<ChipSpec>,
    /// The networks served, indexed by [`Request::network`]
    /// (`crate::workload::Request`).
    pub models: Vec<Model>,
}

impl FleetConfig {
    /// The acceptance-scenario fleet: one Albireo-9 and one Albireo-27
    /// under the conservative estimate, serving the four benchmark
    /// networks.
    pub fn paper_pair() -> FleetConfig {
        FleetConfig {
            chips: vec![
                ChipSpec::albireo_9(TechnologyEstimate::Conservative),
                ChipSpec::albireo_27(TechnologyEstimate::Conservative),
            ],
            models: zoo::all_benchmarks(),
        }
    }

    /// Parses a fleet spec like `albireo_9:C,albireo_27:A`. Each entry is
    /// `<chip>[:<estimate>]` with chip ∈ {albireo_9, albireo_27, ng<N>}
    /// and estimate ∈ {C, M, A} (default C).
    pub fn parse(spec: &str, models: Vec<Model>) -> Result<FleetConfig, String> {
        let mut chips = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (chip_name, est_tag) = match entry.split_once(':') {
                Some((c, e)) => (c.trim(), e.trim()),
                None => (entry, "C"),
            };
            let estimate = match est_tag.to_ascii_uppercase().as_str() {
                "C" | "CONSERVATIVE" => TechnologyEstimate::Conservative,
                "M" | "MODERATE" => TechnologyEstimate::Moderate,
                "A" | "AGGRESSIVE" => TechnologyEstimate::Aggressive,
                other => return Err(format!("unknown estimate `{other}` in fleet spec")),
            };
            let chip = match chip_name {
                "albireo_9" | "albireo9" => ChipConfig::albireo_9(),
                "albireo_27" | "albireo27" => ChipConfig::albireo_27(),
                other => match other.strip_prefix("ng") {
                    Some(n) => {
                        let ng: usize = n
                            .parse()
                            .map_err(|_| format!("bad PLCG count in fleet entry `{entry}`"))?;
                        if ng == 0 {
                            return Err("fleet chips need at least one PLCG".to_string());
                        }
                        ChipConfig::with_ng(ng)
                    }
                    None => return Err(format!("unknown chip `{other}` in fleet spec")),
                },
            };
            chips.push(ChipSpec {
                name: format!("{}_{}", chip_name, estimate.suffix()),
                chip,
                estimate,
            });
        }
        if chips.is_empty() {
            return Err("fleet spec names no chips".to_string());
        }
        Ok(FleetConfig { chips, models })
    }

    /// A compact label for reports, e.g. `albireo_9_C+albireo_27_C`.
    pub fn label(&self) -> String {
        self.chips
            .iter()
            .map(|c| c.name.as_str())
            .collect::<Vec<&str>>()
            .join("+")
    }
}

/// The per-dispatch cost of serving one micro-batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceCost {
    /// Latency of one inference, s.
    pub item_latency_s: f64,
    /// One-time weight-programming setup per batch, s.
    pub batch_setup_s: f64,
    /// Energy of one inference, J.
    pub item_energy_j: f64,
    /// Energy of the setup pass (chip power × setup time), J.
    pub batch_setup_energy_j: f64,
}

impl ServiceCost {
    /// Busy time of a batch of `n` requests, s.
    pub fn batch_latency_s(&self, n: usize) -> f64 {
        self.batch_setup_s + n as f64 * self.item_latency_s
    }

    /// Energy of a batch of `n` requests, J.
    pub fn batch_energy_j(&self, n: usize) -> f64 {
        self.batch_setup_energy_j + n as f64 * self.item_energy_j
    }
}

/// Memoizing service-time oracle over `(chip, active PLCGs, network)`.
///
/// Degradation enters through the PLCG count: a chip with `k` of its
/// PLCGs retired serves from a `ChipConfig` with `ng − k` groups, so the
/// scheduler's `⌈Wm/Ng⌉` kernel-distribution term — and hence latency,
/// power, and energy — degrade exactly as the dataflow model says they
/// should, rather than by an ad-hoc slowdown factor.
#[derive(Debug, Default)]
pub struct ServiceOracle {
    cache: BTreeMap<(usize, usize, usize), ServiceCost>,
}

impl ServiceOracle {
    /// An empty oracle.
    pub fn new() -> ServiceOracle {
        ServiceOracle::default()
    }

    /// The cost of serving `models[network]` on fleet chip `chip_idx`
    /// with `ng_active` healthy PLCGs.
    pub fn cost(
        &mut self,
        fleet: &FleetConfig,
        chip_idx: usize,
        ng_active: usize,
        network: usize,
    ) -> ServiceCost {
        assert!(ng_active > 0, "a chip with zero PLCGs cannot serve");
        *self
            .cache
            .entry((chip_idx, ng_active, network))
            .or_insert_with(|| {
                let spec = &fleet.chips[chip_idx];
                let mut chip = spec.chip;
                chip.ng = ng_active;
                let model = &fleet.models[network];
                let eval = NetworkEvaluation::evaluate(&chip, spec.estimate, model);
                let inv = DeviceInventory::for_chip(&chip);
                let clock = spec.estimate.clock_hz();
                let setup_s = model.total_params() as f64 / (inv.dacs as f64 * clock);
                ServiceCost {
                    item_latency_s: eval.latency_s,
                    batch_setup_s: setup_s,
                    item_energy_j: eval.energy_j,
                    batch_setup_energy_j: eval.power_w * setup_s,
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pair_has_two_chips_and_four_networks() {
        let fleet = FleetConfig::paper_pair();
        assert_eq!(fleet.chips.len(), 2);
        assert_eq!(fleet.models.len(), 4);
        assert_eq!(fleet.label(), "albireo_9+albireo_27");
    }

    #[test]
    fn parse_fleet_specs() {
        let fleet = FleetConfig::parse("albireo_9:C, albireo_27:A", zoo::all_benchmarks()).unwrap();
        assert_eq!(fleet.chips.len(), 2);
        assert_eq!(fleet.chips[0].name, "albireo_9_C");
        assert_eq!(fleet.chips[1].chip.ng, 27);
        assert_eq!(fleet.chips[1].estimate, TechnologyEstimate::Aggressive);
        let custom = FleetConfig::parse("ng18:M", zoo::all_benchmarks()).unwrap();
        assert_eq!(custom.chips[0].chip.ng, 18);
        assert!(FleetConfig::parse("", zoo::all_benchmarks()).is_err());
        assert!(FleetConfig::parse("albireo_9:X", zoo::all_benchmarks()).is_err());
        assert!(FleetConfig::parse("pixel", zoo::all_benchmarks()).is_err());
        assert!(FleetConfig::parse("ng0", zoo::all_benchmarks()).is_err());
    }

    #[test]
    fn oracle_matches_direct_evaluation() {
        let fleet = FleetConfig::paper_pair();
        let mut oracle = ServiceOracle::new();
        let cost = oracle.cost(&fleet, 0, 9, 0);
        let eval = NetworkEvaluation::evaluate(
            &ChipConfig::albireo_9(),
            TechnologyEstimate::Conservative,
            &fleet.models[0],
        );
        assert_eq!(cost.item_latency_s, eval.latency_s);
        assert_eq!(cost.item_energy_j, eval.energy_j);
        assert!(cost.batch_setup_s > 0.0 && cost.batch_setup_energy_j > 0.0);
    }

    #[test]
    fn degraded_chip_is_slower() {
        let fleet = FleetConfig::paper_pair();
        let mut oracle = ServiceOracle::new();
        let healthy = oracle.cost(&fleet, 0, 9, 1);
        let degraded = oracle.cost(&fleet, 0, 5, 1);
        assert!(degraded.item_latency_s > healthy.item_latency_s);
    }

    #[test]
    fn setup_amortization_favours_small_networks() {
        // AlexNet (61M params, 0.13 ms) must have a much larger
        // setup/latency ratio than VGG16 (138M params, 2.88 ms).
        let fleet = FleetConfig::paper_pair();
        let mut oracle = ServiceOracle::new();
        let alex = oracle.cost(&fleet, 0, 9, 0);
        let vgg = oracle.cost(&fleet, 0, 9, 1);
        let (a_ratio, v_ratio) = (
            alex.batch_setup_s / alex.item_latency_s,
            vgg.batch_setup_s / vgg.item_latency_s,
        );
        assert!(a_ratio > 4.0 * v_ratio, "{a_ratio} vs {v_ratio}");
        assert!(a_ratio > 0.1, "AlexNet setup should be material: {a_ratio}");
    }

    #[test]
    fn batch_costs_scale_linearly_past_setup() {
        let fleet = FleetConfig::paper_pair();
        let mut oracle = ServiceOracle::new();
        let c = oracle.cost(&fleet, 0, 9, 0);
        let one = c.batch_latency_s(1);
        let four = c.batch_latency_s(4);
        assert!((four - one - 3.0 * c.item_latency_s).abs() < 1e-15);
        // Batching 4 requests beats 4 singleton dispatches.
        assert!(four < 4.0 * one);
        assert!(c.batch_energy_j(4) < 4.0 * c.batch_energy_j(1));
    }

    #[test]
    #[should_panic(expected = "zero PLCGs")]
    fn zero_active_plcgs_rejected() {
        let fleet = FleetConfig::paper_pair();
        ServiceOracle::new().cost(&fleet, 0, 0, 0);
    }
}

//! The service side of the simulator: a fleet of accelerators plus the
//! per-request service-time oracle.
//!
//! Service times and energies are *not* invented here — they come from
//! the unified [`Accelerator`] cost models: each fleet chip is an
//! `Arc<dyn Accelerator>` (Albireo under any estimate, the photonic
//! PIXEL / DEAP-CNN baselines, or a reported electronic design), and the
//! oracle consumes the [`NetworkCost`](albireo_core::accel::NetworkCost)
//! it returns. The one serving-specific term is the **batch setup time**
//! the cost model reports: weight-stationary designs (Albireo, DEAP-CNN)
//! reprogram their weight DACs once per inference, so consecutive
//! same-network inferences in a micro-batch share one weight-programming
//! pass — ~31% of AlexNet's inference latency on Albireo-9, ~3% of
//! VGG16's, which is exactly why batching pays on small networks.

use albireo_baselines::{reported_accelerators, DeapCnn, Pixel};
use albireo_core::accel::{Accelerator, AlbireoAccelerator};
use albireo_core::config::{ChipConfig, TechnologyEstimate};
use albireo_modes::{GemmMode, WinogradAccelerator};
use albireo_nn::{zoo, Model};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// The shared power budget (W) the photonic baselines are built to in the
/// paper's comparison (§IV-A), reused when a fleet spec names one.
pub const BASELINE_BUDGET_W: f64 = 60.0;

/// One chip in the fleet: a display name plus the accelerator cost model
/// behind it.
#[derive(Clone)]
pub struct ChipSpec {
    /// Display name (e.g. `albireo_9`, `deap_M`).
    pub name: String,
    /// The cost model serving this slot.
    pub accel: Arc<dyn Accelerator>,
}

impl fmt::Debug for ChipSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChipSpec")
            .field("name", &self.name)
            .field("compute_groups", &self.accel.compute_groups())
            .finish()
    }
}

/// Chip specs are compared by name: fleet parsing derives the name from
/// the full `(chip, estimate)` coordinate, so equal names mean equal
/// configurations everywhere a fleet can come from.
impl PartialEq for ChipSpec {
    fn eq(&self, other: &ChipSpec) -> bool {
        self.name == other.name
    }
}

impl ChipSpec {
    /// A chip from any accelerator cost model.
    pub fn from_accelerator(name: impl Into<String>, accel: Arc<dyn Accelerator>) -> ChipSpec {
        ChipSpec {
            name: name.into(),
            accel,
        }
    }

    /// The paper's 9-PLCG chip under an estimate.
    pub fn albireo_9(estimate: TechnologyEstimate) -> ChipSpec {
        ChipSpec {
            name: "albireo_9".to_string(),
            accel: Arc::new(AlbireoAccelerator::albireo_9(estimate)),
        }
    }

    /// The paper's 27-PLCG chip under an estimate.
    pub fn albireo_27(estimate: TechnologyEstimate) -> ChipSpec {
        ChipSpec {
            name: "albireo_27".to_string(),
            accel: Arc::new(AlbireoAccelerator::albireo_27(estimate)),
        }
    }
}

/// The fleet: chips plus the model table network indices refer to.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// The chips, in dispatch-preference order (ties in availability go to
    /// the lowest index).
    pub chips: Vec<ChipSpec>,
    /// The networks served, indexed by
    /// [`Request::network`](crate::workload::Request::network).
    pub models: Vec<Model>,
}

impl FleetConfig {
    /// The acceptance-scenario fleet: one Albireo-9 and one Albireo-27
    /// under the conservative estimate, serving the four benchmark
    /// networks.
    pub fn paper_pair() -> FleetConfig {
        FleetConfig {
            chips: vec![
                ChipSpec::albireo_9(TechnologyEstimate::Conservative),
                ChipSpec::albireo_27(TechnologyEstimate::Conservative),
            ],
            models: zoo::all_benchmarks(),
        }
    }

    /// Parses a fleet spec like `albireo_9:C, deap:M, eyeriss`. Each entry
    /// is `<chip>[:<estimate>]` with chip one of
    ///
    /// * `albireo_9`, `albireo_27`, `ng<N>` — Albireo chips;
    /// * `winograd_9` (alias `winograd`), `winograd_27` — the same
    ///   silicon running the Winograd F(2×2, 3×3) transform-domain
    ///   conv dataflow;
    /// * `gemm_9` (alias `gemm`), `gemm_27` — the incoherent-MRR GEMM
    ///   mode (dense/pointwise layers only; conv trunks are routed to
    ///   other chips by support-aware dispatch);
    /// * `pixel`, `deap` — the photonic baselines at the shared 60 W
    ///   budget built from the estimate's device powers;
    /// * `eyeriss`, `envision`, `unpu` — reported electronic designs
    ///   (these take no estimate: their numbers are published, not
    ///   modelled).
    ///
    /// Estimate ∈ {C, M, A} (default C). Entries that accept an estimate
    /// are named `<chip>_<suffix>` (e.g. `deap_M`); electronic entries
    /// keep their bare name.
    ///
    /// An entry may carry an explicit alias, `<alias>=<chip>[:<estimate>]`
    /// (e.g. `edge=albireo_9:C`), which replaces the derived name in
    /// labels and reports. Aliases must be unique across the fleet —
    /// a duplicate alias is a spec error, never last-one-wins — while
    /// *unaliased* duplicate entries stay legal (two `albireo_9:C`
    /// entries are simply a two-chip fleet).
    pub fn parse(spec: &str, models: Vec<Model>) -> Result<FleetConfig, String> {
        let mut chips: Vec<ChipSpec> = Vec::new();
        let mut aliases: Vec<String> = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (alias, entry) = match entry.split_once('=') {
                Some((a, rest)) => {
                    let a = a.trim();
                    if a.is_empty()
                        || !a
                            .chars()
                            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                    {
                        return Err(format!("bad chip alias `{a}` in fleet entry `{entry}`"));
                    }
                    (Some(a.to_string()), rest.trim())
                }
                None => (None, entry),
            };
            let (chip_name, est_tag) = match entry.split_once(':') {
                Some((c, e)) => (c.trim(), Some(e.trim())),
                None => (entry, None),
            };
            let estimate = match est_tag.unwrap_or("C").to_ascii_uppercase().as_str() {
                "C" | "CONSERVATIVE" => TechnologyEstimate::Conservative,
                "M" | "MODERATE" => TechnologyEstimate::Moderate,
                "A" | "AGGRESSIVE" => TechnologyEstimate::Aggressive,
                other => return Err(format!("unknown estimate `{other}` in fleet spec")),
            };
            let named = |accel: Arc<dyn Accelerator>| ChipSpec {
                name: format!("{}_{}", chip_name, estimate.suffix()),
                accel,
            };
            let lower = chip_name.to_ascii_lowercase();
            let spec = match lower.as_str() {
                "albireo_9" | "albireo9" => named(Arc::new(AlbireoAccelerator::new(
                    chip_name,
                    ChipConfig::albireo_9(),
                    estimate,
                ))),
                "albireo_27" | "albireo27" => named(Arc::new(AlbireoAccelerator::new(
                    chip_name,
                    ChipConfig::albireo_27(),
                    estimate,
                ))),
                "winograd" | "winograd_9" | "winograd9" => named(Arc::new(
                    WinogradAccelerator::new(chip_name, ChipConfig::albireo_9(), estimate),
                )),
                "winograd_27" | "winograd27" => named(Arc::new(WinogradAccelerator::new(
                    chip_name,
                    ChipConfig::albireo_27(),
                    estimate,
                ))),
                "gemm" | "gemm_9" | "gemm9" => named(Arc::new(GemmMode::new(
                    chip_name,
                    ChipConfig::albireo_9(),
                    estimate,
                ))),
                "gemm_27" | "gemm27" => named(Arc::new(GemmMode::new(
                    chip_name,
                    ChipConfig::albireo_27(),
                    estimate,
                ))),
                "pixel" => named(Arc::new(Pixel::scaled_to_power(
                    BASELINE_BUDGET_W,
                    estimate,
                ))),
                "deap" | "deap-cnn" | "deapcnn" => named(Arc::new(DeapCnn::scaled_to_power(
                    BASELINE_BUDGET_W,
                    estimate,
                ))),
                "eyeriss" | "envision" | "unpu" => {
                    if est_tag.is_some() {
                        return Err(format!(
                            "`{chip_name}` uses reported numbers and takes no estimate tag"
                        ));
                    }
                    let accel = reported_accelerators()
                        .into_iter()
                        .find(|a| a.name.eq_ignore_ascii_case(chip_name))
                        .expect("reported accelerator exists");
                    ChipSpec {
                        name: lower.clone(),
                        accel: Arc::new(accel),
                    }
                }
                other => match other.strip_prefix("ng") {
                    Some(n) => {
                        let ng: usize = n
                            .parse()
                            .map_err(|_| format!("bad PLCG count in fleet entry `{entry}`"))?;
                        if ng == 0 {
                            return Err("fleet chips need at least one PLCG".to_string());
                        }
                        named(Arc::new(AlbireoAccelerator::new(
                            chip_name,
                            ChipConfig::with_ng(ng),
                            estimate,
                        )))
                    }
                    None => return Err(format!("unknown chip `{other}` in fleet spec")),
                },
            };
            let spec = match alias {
                Some(alias) => {
                    aliases.push(alias.clone());
                    ChipSpec {
                        name: alias,
                        accel: spec.accel,
                    }
                }
                None => spec,
            };
            chips.push(spec);
        }
        if chips.is_empty() {
            return Err("fleet spec names no chips".to_string());
        }
        for alias in &aliases {
            if chips.iter().filter(|c| &c.name == alias).count() > 1 {
                return Err(format!(
                    "duplicate chip alias `{alias}` in fleet spec (aliases must be unique)"
                ));
            }
        }
        Ok(FleetConfig { chips, models })
    }

    /// A compact label for reports, e.g. `albireo_9_C+albireo_27_C`.
    pub fn label(&self) -> String {
        self.chips
            .iter()
            .map(|c| c.name.as_str())
            .collect::<Vec<&str>>()
            .join("+")
    }

    /// Whether at least one chip in the fleet can run `model`.
    pub fn supports(&self, model: &Model) -> bool {
        self.chips.iter().any(|c| c.accel.supports(model))
    }
}

impl fmt::Display for FleetConfig {
    /// One human-oriented line — chip roster plus model table — for CLI
    /// diagnostics (`{:?}` stays the exhaustive derive for debugging).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} chip(s) [{}] serving {} network(s) [{}]",
            self.chips.len(),
            self.label(),
            self.models.len(),
            self.models
                .iter()
                .map(Model::name)
                .collect::<Vec<&str>>()
                .join(", "),
        )
    }
}

/// The per-dispatch cost of serving one micro-batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceCost {
    /// Latency of one inference, s.
    pub item_latency_s: f64,
    /// One-time weight-programming setup per batch, s.
    pub batch_setup_s: f64,
    /// Energy of one inference, J.
    pub item_energy_j: f64,
    /// Energy of the setup pass (chip power × setup time), J.
    pub batch_setup_energy_j: f64,
}

impl ServiceCost {
    /// Busy time of a batch of `n` requests, s.
    pub fn batch_latency_s(&self, n: usize) -> f64 {
        self.batch_setup_s + n as f64 * self.item_latency_s
    }

    /// Energy of a batch of `n` requests, J.
    pub fn batch_energy_j(&self, n: usize) -> f64 {
        self.batch_setup_energy_j + n as f64 * self.item_energy_j
    }
}

/// Memoizing service-time oracle over `(chip, active groups, network)`.
///
/// Degradation enters through the accelerator's compute-group count: an
/// Albireo chip with `k` of its PLCGs retired serves from a `ChipConfig`
/// with `ng − k` groups (so the scheduler's `⌈Wm/Ng⌉` kernel-distribution
/// term — and hence latency, power, and energy — degrade exactly as the
/// dataflow model says they should), and a PIXEL/DEAP-CNN baseline serves
/// from the surviving unit/engine count. There is no ad-hoc slowdown
/// factor anywhere.
#[derive(Debug, Default)]
pub struct ServiceOracle {
    cache: BTreeMap<(usize, usize, usize), ServiceCost>,
}

impl ServiceOracle {
    /// An empty oracle.
    pub fn new() -> ServiceOracle {
        ServiceOracle::default()
    }

    /// The cost of serving `models[network]` on fleet chip `chip_idx`
    /// with `groups_active` healthy compute groups.
    pub fn cost(
        &mut self,
        fleet: &FleetConfig,
        chip_idx: usize,
        groups_active: usize,
        network: usize,
    ) -> ServiceCost {
        assert!(
            groups_active > 0,
            "a chip with zero compute groups cannot serve"
        );
        *self
            .cache
            .entry((chip_idx, groups_active, network))
            .or_insert_with(|| {
                let spec = &fleet.chips[chip_idx];
                let model = &fleet.models[network];
                let cost = spec.accel.cost_with_groups(model, groups_active);
                ServiceCost {
                    item_latency_s: cost.latency_s,
                    batch_setup_s: cost.setup_s,
                    item_energy_j: cost.energy_j,
                    batch_setup_energy_j: cost.setup_energy_j,
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use albireo_core::energy::NetworkEvaluation;

    #[test]
    fn paper_pair_has_two_chips_and_four_networks() {
        let fleet = FleetConfig::paper_pair();
        assert_eq!(fleet.chips.len(), 2);
        assert_eq!(fleet.models.len(), 4);
        assert_eq!(fleet.label(), "albireo_9+albireo_27");
    }

    #[test]
    fn parse_fleet_specs() {
        let fleet = FleetConfig::parse("albireo_9:C, albireo_27:A", zoo::all_benchmarks()).unwrap();
        assert_eq!(fleet.chips.len(), 2);
        assert_eq!(fleet.chips[0].name, "albireo_9_C");
        assert_eq!(fleet.chips[1].name, "albireo_27_A");
        assert_eq!(fleet.chips[1].accel.compute_groups(), 27);
        let custom = FleetConfig::parse("ng18:M", zoo::all_benchmarks()).unwrap();
        assert_eq!(custom.chips[0].accel.compute_groups(), 18);
        assert!(FleetConfig::parse("", zoo::all_benchmarks()).is_err());
        assert!(FleetConfig::parse("albireo_9:X", zoo::all_benchmarks()).is_err());
        assert!(FleetConfig::parse("ng0", zoo::all_benchmarks()).is_err());
        assert!(FleetConfig::parse("tpu", zoo::all_benchmarks()).is_err());
    }

    #[test]
    fn parse_aliases_rename_chips_and_must_be_unique() {
        let fleet = FleetConfig::parse(
            "edge=albireo_9:C, bulk=albireo_27:C, albireo_9:C",
            zoo::all_benchmarks(),
        )
        .unwrap();
        assert_eq!(fleet.chips[0].name, "edge");
        assert_eq!(fleet.chips[1].name, "bulk");
        assert_eq!(fleet.chips[2].name, "albireo_9_C");
        assert_eq!(fleet.label(), "edge+bulk+albireo_9_C");

        // Duplicate aliases are a typed error, never last-one-wins.
        let err =
            FleetConfig::parse("a=albireo_9, a=albireo_27", zoo::all_benchmarks()).unwrap_err();
        assert!(
            err.contains("duplicate chip alias `a`"),
            "unexpected message: {err}"
        );
        // An alias shadowing a derived name is the same error.
        let err = FleetConfig::parse(
            "albireo_9_C=albireo_27:C, albireo_9:C",
            zoo::all_benchmarks(),
        )
        .unwrap_err();
        assert!(err.contains("duplicate chip alias `albireo_9_C`"));
        // Unaliased duplicates stay legal: that is just an n-chip fleet.
        let twins = FleetConfig::parse("albireo_9:C, albireo_9:C", zoo::all_benchmarks()).unwrap();
        assert_eq!(twins.chips.len(), 2);
        // Malformed aliases are rejected.
        assert!(FleetConfig::parse("=albireo_9", zoo::all_benchmarks()).is_err());
        assert!(FleetConfig::parse("a b=albireo_9", zoo::all_benchmarks()).is_err());
    }

    #[test]
    fn parse_mixed_photonic_electronic_fleet() {
        let fleet = FleetConfig::parse(
            "albireo_27:A, pixel, deap:M, eyeriss, unpu",
            zoo::all_benchmarks(),
        )
        .unwrap();
        assert_eq!(fleet.chips.len(), 5);
        assert_eq!(fleet.chips[1].name, "pixel_C");
        assert_eq!(fleet.chips[2].name, "deap_M");
        assert_eq!(fleet.chips[3].name, "eyeriss");
        assert_eq!(fleet.label(), "albireo_27_A+pixel_C+deap_M+eyeriss+unpu");
        // PIXEL at 60 W has hundreds of units; eyeriss is monolithic.
        assert!(fleet.chips[1].accel.compute_groups() > 100);
        assert_eq!(fleet.chips[3].accel.compute_groups(), 1);
        // Electronic baselines only support their reported networks.
        assert!(fleet.chips[3].accel.supports(&zoo::vgg16()));
        assert!(!fleet.chips[3].accel.supports(&zoo::mobilenet()));
        assert!(fleet.supports(&zoo::mobilenet()), "albireo covers the rest");
        // Estimate tags are meaningless for reported numbers.
        assert!(FleetConfig::parse("eyeriss:A", zoo::all_benchmarks()).is_err());
    }

    #[test]
    fn parse_operating_mode_fleet() {
        let fleet = FleetConfig::parse("albireo_9:C, winograd_27:A, gemm:M", zoo::serving_models())
            .unwrap();
        assert_eq!(fleet.chips.len(), 3);
        assert_eq!(fleet.chips[1].name, "winograd_27_A");
        assert_eq!(fleet.chips[1].accel.compute_groups(), 27);
        assert_eq!(fleet.chips[2].name, "gemm_M");
        // GEMM chips reject conv trunks; support-aware dispatch covers
        // them via the direct/Winograd chips.
        assert!(!fleet.chips[2].accel.supports(&zoo::vgg16()));
        assert!(fleet.chips[2].accel.supports(&zoo::mlp_mixer()));
        assert!(fleet.supports(&zoo::vgg16()));
        assert!(fleet.supports(&zoo::mlp_mixer()));
        // A gemm-only fleet cannot serve a CNN at all.
        let dense_only = FleetConfig::parse("gemm_9, gemm_27:A", zoo::serving_models()).unwrap();
        assert!(!dense_only.supports(&zoo::alexnet()));
        assert!(dense_only.supports(&zoo::transformer_encoder_block()));
    }

    #[test]
    fn winograd_fleet_chip_is_faster_on_vgg16() {
        let fleet = FleetConfig::parse("albireo_9:C, winograd_9:C", zoo::serving_models()).unwrap();
        let mut oracle = ServiceOracle::new();
        let direct = oracle.cost(&fleet, 0, 9, 1);
        let wino = oracle.cost(&fleet, 1, 9, 1);
        assert!(wino.item_latency_s < direct.item_latency_s);
        assert!(wino.item_energy_j < direct.item_energy_j);
    }

    #[test]
    fn oracle_matches_direct_evaluation() {
        let fleet = FleetConfig::paper_pair();
        let mut oracle = ServiceOracle::new();
        let cost = oracle.cost(&fleet, 0, 9, 0);
        let eval = NetworkEvaluation::evaluate(
            &ChipConfig::albireo_9(),
            TechnologyEstimate::Conservative,
            &fleet.models[0],
        );
        assert_eq!(cost.item_latency_s, eval.latency_s);
        assert_eq!(cost.item_energy_j, eval.energy_j);
        assert!(cost.batch_setup_s > 0.0 && cost.batch_setup_energy_j > 0.0);
    }

    #[test]
    fn oracle_costs_baseline_chips_through_the_trait() {
        let fleet = FleetConfig::parse("deap:C, pixel:C", zoo::all_benchmarks()).unwrap();
        let mut oracle = ServiceOracle::new();
        let deap = oracle.cost(&fleet, 0, fleet.chips[0].accel.compute_groups(), 1);
        let direct = DeapCnn::paper_60w().cost(&fleet.models[1]);
        assert_eq!(deap.item_latency_s, direct.latency_s);
        assert_eq!(deap.item_energy_j, direct.energy_j);
        assert_eq!(deap.batch_setup_s, direct.setup_s);
        let pixel = oracle.cost(&fleet, 1, fleet.chips[1].accel.compute_groups(), 1);
        assert_eq!(pixel.batch_setup_s, 0.0, "PIXEL streams weights");
        assert!(pixel.item_latency_s > deap.item_latency_s);
    }

    #[test]
    fn degraded_chip_is_slower() {
        let fleet = FleetConfig::paper_pair();
        let mut oracle = ServiceOracle::new();
        let healthy = oracle.cost(&fleet, 0, 9, 1);
        let degraded = oracle.cost(&fleet, 0, 5, 1);
        assert!(degraded.item_latency_s > healthy.item_latency_s);
    }

    #[test]
    fn setup_amortization_favours_small_networks() {
        // AlexNet (61M params, 0.13 ms) must have a much larger
        // setup/latency ratio than VGG16 (138M params, 2.88 ms).
        let fleet = FleetConfig::paper_pair();
        let mut oracle = ServiceOracle::new();
        let alex = oracle.cost(&fleet, 0, 9, 0);
        let vgg = oracle.cost(&fleet, 0, 9, 1);
        let (a_ratio, v_ratio) = (
            alex.batch_setup_s / alex.item_latency_s,
            vgg.batch_setup_s / vgg.item_latency_s,
        );
        assert!(a_ratio > 4.0 * v_ratio, "{a_ratio} vs {v_ratio}");
        assert!(a_ratio > 0.1, "AlexNet setup should be material: {a_ratio}");
    }

    #[test]
    fn batch_costs_scale_linearly_past_setup() {
        let fleet = FleetConfig::paper_pair();
        let mut oracle = ServiceOracle::new();
        let c = oracle.cost(&fleet, 0, 9, 0);
        let one = c.batch_latency_s(1);
        let four = c.batch_latency_s(4);
        assert!((four - one - 3.0 * c.item_latency_s).abs() < 1e-15);
        // Batching 4 requests beats 4 singleton dispatches.
        assert!(four < 4.0 * one);
        assert!(c.batch_energy_j(4) < 4.0 * c.batch_energy_j(1));
    }

    #[test]
    #[should_panic(expected = "zero compute groups")]
    fn zero_active_groups_rejected() {
        let fleet = FleetConfig::paper_pair();
        ServiceOracle::new().cost(&fleet, 0, 0, 0);
    }
}

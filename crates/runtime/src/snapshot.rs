//! Checkpoint snapshots of an in-flight serving run.
//!
//! A [`SimSnapshot`] captures *everything* the engine holds between two
//! event instants: the virtual clock boundary, the pending event queue
//! (in pop order), the bounded request queue, per-chip state, the
//! streaming accumulators (`RunTotals`, including the latency quantile
//! sketch and the incremental record-digest fold), and the arrival
//! lookahead. The one thing it does **not** store is the workload RNG —
//! the stream is a pure function of `(workload, requests, seed)`, so
//! resume re-seeds it and fast-forwards exactly `offered` draws, then
//! cross-checks the regenerated lookahead request against the stored
//! one bit for bit. A resumed run therefore produces a report
//! byte-identical to the uninterrupted run (same digest, same JSON).
//!
//! ## Wire format — `albireo.snapshot/v1`
//!
//! Line-oriented text, one record per line, `f64`s as 16-hex-digit
//! IEEE-754 bit patterns (exact round-trip, no shortest-float
//! ambiguity). The final line is `digest <16-hex>`: an FNV-1a hash of
//! every preceding byte, so torn writes and hand edits are rejected at
//! parse time. A `fingerprint` line hashes the fleet label and the
//! full `ServeConfig`; resume refuses a snapshot whose fingerprint does
//! not match the offered configuration. The format is documented in
//! DESIGN.md §13.

use crate::alerts::{
    AlertBook, AlertEvent, AlertPolicy, AlertRule, BurnRule, ClassAlertState, WindowCounts,
};
use crate::fault::FaultKind;
use crate::report::{ClassTotals, RequestRecord, RunTotals};
use crate::sim::{ChipState, EventKind};
use crate::workload::Request;
use albireo_core::report::json;
use albireo_obs::{fnv1a, QuantileSketch};
use std::fmt::Write as _;

/// Schema tag on the first line of every snapshot file.
pub const SNAPSHOT_SCHEMA: &str = "albireo.snapshot/v1";

/// A complete, serializable capture of an in-flight serving run at a
/// checkpoint boundary. Produce one with
/// [`crate::sim::simulate_checkpointed`]; turn it back into a running
/// simulation with [`crate::sim::resume_checkpointed`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimSnapshot {
    /// FNV-1a over the fleet label and the full `ServeConfig` debug
    /// rendering — resume refuses a mismatched configuration.
    pub(crate) fingerprint: u64,
    /// Configured request count (replay cross-check).
    pub(crate) requests: usize,
    /// Master seed (replay cross-check).
    pub(crate) seed: u64,
    /// The checkpoint boundary on the virtual clock, s. Every event
    /// strictly before this instant has been applied.
    pub(crate) at_s: f64,
    /// How many checkpoints (including this one) the run has emitted.
    pub(crate) checkpoints: u64,
    /// Event insertion counter (keeps the total order stable on resume).
    pub(crate) seq: u64,
    /// The arrival lookahead — the next stream request not yet merged.
    pub(crate) next_arrival: Option<Request>,
    /// Streaming accumulators, including the capped record sample.
    pub(crate) totals: RunTotals,
    /// The bounded dispatch queue, front to back.
    pub(crate) queue: Vec<Request>,
    /// Pending events as `(time_bits, class, seq, kind)`, in pop order.
    pub(crate) events: Vec<(u64, u8, u64, EventKind)>,
    /// Event-queue high-water mark at capture time.
    pub(crate) peak_event_queue: usize,
    /// Per-chip engine state, in fleet order.
    pub(crate) chips: Vec<ChipState>,
}

impl SimSnapshot {
    /// The checkpoint boundary on the virtual clock, s.
    pub fn at_s(&self) -> f64 {
        self.at_s
    }

    /// Checkpoints emitted so far, including this one.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Requests offered (streamed) before the boundary.
    pub fn offered(&self) -> u64 {
        self.totals.offered
    }

    /// Requests completed before the boundary.
    pub fn completed(&self) -> u64 {
        self.totals.rec_count
    }

    /// Requests shed before the boundary.
    pub fn shed(&self) -> u64 {
        self.totals.shed
    }

    /// Requests waiting in the dispatch queue at the boundary.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Events pending in the DES queue at the boundary.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Median end-to-end latency so far, ms (sketch estimate).
    pub fn p50_ms(&self) -> f64 {
        self.totals.latency_ms.quantile(0.50)
    }

    /// 99th-percentile latency so far, ms (sketch estimate).
    pub fn p99_ms(&self) -> f64 {
        self.totals.latency_ms.quantile(0.99)
    }

    /// The configuration fingerprint this snapshot was captured under.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Burn-rate alert transitions recorded up to this boundary, in
    /// fire order (empty when the workload has no SLO classes).
    pub fn alert_events(&self) -> &[AlertEvent] {
        &self.totals.alerts.events
    }

    /// `albireo.serve.alert/v1` JSON lines (no trailing newlines) for
    /// every alert transition with index `>= from`, each tagged with
    /// this boundary's checkpoint number. Streaming callers pass the
    /// count they have already written, so a transition is emitted
    /// exactly once even though the snapshot carries the full log.
    pub fn alert_json_lines(&self, from: usize) -> Vec<String> {
        let name = |class: usize| -> &str {
            self.totals
                .classes
                .get(class)
                .map_or("?", |ct| ct.name.as_str())
        };
        self.totals
            .alerts
            .events
            .iter()
            .skip(from)
            .map(|e| {
                format!(
                    "{{\"schema\": \"albireo.serve.alert/v1\", \"checkpoint\": {}, \
                     \"class\": \"{}\", \"rule\": \"{}\", \"type\": \"{}\", \
                     \"at_s\": {}, \"burn_short\": {}, \"burn_long\": {}}}",
                    self.checkpoints,
                    name(e.class),
                    e.rule.label(),
                    if e.fire { "fire" } else { "resolve" },
                    json::num(e.at_s),
                    json::num(e.burn_short),
                    json::num(e.burn_long),
                )
            })
            .collect()
    }

    /// Derives an obs [`albireo_obs::MetricsSnapshot`] from the
    /// snapshot's streaming accumulators — the OpenMetrics view of the
    /// run at this checkpoint boundary. Counters are cumulative since
    /// the start of the run; gauges are point-in-time.
    pub fn metrics_snapshot(&self) -> albireo_obs::MetricsSnapshot {
        let r = albireo_obs::Registry::new();
        r.counter("serve.offered").add(self.totals.offered);
        r.counter("serve.completed").add(self.totals.rec_count);
        r.counter("serve.shed").add(self.totals.shed);
        r.gauge("serve.at_s").set(self.at_s);
        r.gauge("serve.queue_depth").set(self.queue.len() as f64);
        r.gauge("serve.pending_events")
            .set(self.events.len() as f64);
        r.sketch("serve.latency_ms")
            .merge_from(&self.totals.latency_ms);
        for (ci, ct) in self.totals.classes.iter().enumerate() {
            if ct.slo_ms.is_none() {
                continue;
            }
            r.counter(&format!("serve.class.{}.alerts_fired", ct.name))
                .add(self.totals.alerts.fired(ci));
            r.gauge(&format!("serve.class.{}.alert_active", ct.name))
                .set(if self.totals.alerts.active(ci) {
                    1.0
                } else {
                    0.0
                });
        }
        r.snapshot()
    }

    /// One `albireo.serve.progress/v1` JSON line summarizing the run at
    /// this boundary — the incremental-report record streamed to
    /// `--report-jsonl` (no trailing newline).
    pub fn progress_json(&self) -> String {
        format!(
            "{{\"schema\": \"albireo.serve.progress/v1\", \"checkpoint\": {}, \
             \"at_s\": {}, \"offered\": {}, \"completed\": {}, \"shed\": {}, \
             \"queued\": {}, \"events\": {}, \"p50_ms\": {}, \"p99_ms\": {}}}",
            self.checkpoints,
            json::num(self.at_s),
            self.totals.offered,
            self.totals.rec_count,
            self.totals.shed,
            self.queue.len(),
            self.events.len(),
            json::num(self.p50_ms()),
            json::num(self.p99_ms()),
        )
    }

    /// Serializes the snapshot to its `albireo.snapshot/v1` text form,
    /// ending with the self-digest line.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(SNAPSHOT_SCHEMA);
        out.push('\n');
        let _ = writeln!(out, "fingerprint {:016x}", self.fingerprint);
        let _ = writeln!(out, "requests {}", self.requests);
        let _ = writeln!(out, "seed {}", self.seed);
        let _ = writeln!(out, "at {:016x}", self.at_s.to_bits());
        let _ = writeln!(out, "checkpoints {}", self.checkpoints);
        let _ = writeln!(out, "seq {}", self.seq);
        let _ = writeln!(out, "peak_events {}", self.peak_event_queue);
        match &self.next_arrival {
            Some(r) => {
                let _ = writeln!(
                    out,
                    "next_arrival {} {:016x} {} {}",
                    r.id,
                    r.arrival_s.to_bits(),
                    r.network,
                    r.class
                );
            }
            None => out.push_str("next_arrival none\n"),
        }
        let t = &self.totals;
        let _ = writeln!(
            out,
            "totals {} {} {:016x} {} {:016x} {:016x} {:016x} {:016x} {}",
            t.offered,
            t.shed,
            t.rec_fold,
            t.rec_count,
            t.latency_sum_ms.to_bits(),
            t.wait_sum_ms.to_bits(),
            t.max_finish_s.to_bits(),
            t.last_arrival_s.to_bits(),
            t.max_queue_depth,
        );
        write_sketch(&mut out, &t.latency_ms);
        let _ = writeln!(out, "classes {}", t.classes.len());
        for c in &t.classes {
            let slo = match c.slo_ms {
                Some(s) => format!("{:016x}", s.to_bits()),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "class {} {} {} {:016x} {} {}",
                c.completed,
                c.shed,
                c.slo_hits,
                c.latency_sum_ms.to_bits(),
                slo,
                c.name,
            );
            write_sketch(&mut out, &c.latency_ms);
        }
        let _ = writeln!(out, "records {}", t.records.len());
        for r in &t.records {
            let _ = writeln!(
                out,
                "record {} {} {} {:016x} {:016x} {:016x}",
                r.id,
                r.network,
                r.chip,
                r.arrival_s.to_bits(),
                r.start_s.to_bits(),
                r.finish_s.to_bits(),
            );
        }
        let _ = writeln!(out, "queued {}", self.queue.len());
        for r in &self.queue {
            let _ = writeln!(
                out,
                "req {} {:016x} {} {}",
                r.id,
                r.arrival_s.to_bits(),
                r.network,
                r.class
            );
        }
        let _ = writeln!(out, "events {}", self.events.len());
        for (time_bits, class, seq, kind) in &self.events {
            let _ = write!(out, "event {time_bits:016x} {class} {seq} ");
            match kind {
                EventKind::Fault(FaultKind::ChipOffline { chip }) => {
                    let _ = write!(out, "fault chip_offline {chip}");
                }
                EventKind::Fault(FaultKind::ChipOnline { chip }) => {
                    let _ = write!(out, "fault chip_online {chip}");
                }
                EventKind::Fault(FaultKind::PlcgOffline { chip, count }) => {
                    let _ = write!(out, "fault plcg_offline {chip} {count}");
                }
                EventKind::Fault(FaultKind::PlcgRestore { chip, count }) => {
                    let _ = write!(out, "fault plcg_restore {chip} {count}");
                }
                EventKind::Completion { chip } => {
                    let _ = write!(out, "completion {chip}");
                }
                EventKind::WarmedUp { chip } => {
                    let _ = write!(out, "warmed {chip}");
                }
                EventKind::Timer => out.push_str("timer"),
            }
            out.push('\n');
        }
        let _ = writeln!(out, "chips {}", self.chips.len());
        for c in &self.chips {
            let _ = writeln!(
                out,
                "chip {} {} {} {:016x} {:016x} {} {} {} {} {:016x} {:016x} {}",
                c.online as u8,
                c.plcgs_down,
                c.busy as u8,
                c.busy_s.to_bits(),
                c.energy_j.to_bits(),
                c.served,
                c.batches,
                c.parked as u8,
                c.warming as u8,
                c.provisioned_s.to_bits(),
                c.provisioned_at_s.to_bits(),
                c.spin_ups,
            );
        }
        // Burn-rate alert state — present only when the run tracks an
        // SLO class, so classless snapshots stay byte-identical to the
        // pre-alerting format (still `albireo.snapshot/v1`; parsers
        // treat the section as optional).
        if self.totals.alerts.is_active() {
            let b = &self.totals.alerts;
            let p = &b.policy;
            let active: Vec<(usize, &ClassAlertState)> = b
                .states
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.as_ref().map(|st| (i, st)))
                .collect();
            let _ = writeln!(
                out,
                "alerts {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {} {} {}",
                p.target.to_bits(),
                p.fast.short_s.to_bits(),
                p.fast.long_s.to_bits(),
                p.fast.factor.to_bits(),
                p.slow.short_s.to_bits(),
                p.slow.long_s.to_bits(),
                p.slow.factor.to_bits(),
                active.len(),
                b.events.len(),
                b.dropped,
            );
            for (class, st) in active {
                let _ = writeln!(
                    out,
                    "astate {} {} {}",
                    class, st.fast_firing as u8, st.slow_firing as u8
                );
                for w in [&st.fast_short, &st.fast_long, &st.slow_short, &st.slow_long] {
                    write_window(&mut out, w);
                }
            }
            for e in &b.events {
                let _ = writeln!(
                    out,
                    "aevent {} {} {} {:016x} {:016x} {:016x}",
                    e.class,
                    e.rule.label(),
                    e.fire as u8,
                    e.at_s.to_bits(),
                    e.burn_short.to_bits(),
                    e.burn_long.to_bits(),
                );
            }
        }
        let digest = fnv1a(out.as_bytes());
        let _ = writeln!(out, "digest {digest:016x}");
        out
    }

    /// Parses an `albireo.snapshot/v1` text snapshot, verifying the
    /// trailing self-digest before interpreting a single field.
    pub fn parse(text: &str) -> Result<SimSnapshot, String> {
        let stripped = text.strip_suffix('\n').unwrap_or(text);
        let (head, last) = stripped
            .rsplit_once('\n')
            .ok_or_else(|| "snapshot too short".to_string())?;
        let digest_hex = last
            .strip_prefix("digest ")
            .ok_or_else(|| format!("last line must be `digest <hex>`, found `{last}`"))?;
        let want = u64::from_str_radix(digest_hex, 16)
            .map_err(|e| format!("bad digest `{digest_hex}`: {e}"))?;
        let body = &text[..head.len() + 1];
        let got = fnv1a(body.as_bytes());
        if want != got {
            return Err(format!(
                "snapshot digest mismatch: file says {digest_hex}, content hashes to {got:016x} \
                 (truncated write or edited file)"
            ));
        }

        let mut cur = Cursor {
            lines: body.lines(),
            lineno: 0,
        };
        let schema = cur.next_line()?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(format!(
                "unsupported snapshot schema `{schema}` (this build reads {SNAPSHOT_SCHEMA})"
            ));
        }
        let fingerprint = p_hex(cur.tagged("fingerprint")?)?;
        let requests = p_usize(cur.tagged("requests")?)?;
        let seed = p_u64(cur.tagged("seed")?)?;
        let at_s = f64::from_bits(p_hex(cur.tagged("at")?)?);
        let checkpoints = p_u64(cur.tagged("checkpoints")?)?;
        let seq = p_u64(cur.tagged("seq")?)?;
        let peak_event_queue = p_usize(cur.tagged("peak_events")?)?;
        let arrival_rest = cur.tagged("next_arrival")?;
        let next_arrival = if arrival_rest == "none" {
            None
        } else {
            let mut t = arrival_rest.split_whitespace();
            Some(Request {
                id: p_u64(tok(&mut t, "arrival id")?)?,
                arrival_s: f64::from_bits(p_hex(tok(&mut t, "arrival time")?)?),
                network: p_usize(tok(&mut t, "arrival network")?)?,
                class: p_usize(tok(&mut t, "arrival class")?)?,
            })
        };
        let totals_rest = cur.tagged("totals")?;
        let mut t = totals_rest.split_whitespace();
        let mut totals = RunTotals::new(Vec::new());
        totals.offered = p_u64(tok(&mut t, "offered")?)?;
        totals.shed = p_u64(tok(&mut t, "shed")?)?;
        totals.rec_fold = p_hex(tok(&mut t, "rec_fold")?)?;
        totals.rec_count = p_u64(tok(&mut t, "rec_count")?)?;
        totals.latency_sum_ms = f64::from_bits(p_hex(tok(&mut t, "latency_sum")?)?);
        totals.wait_sum_ms = f64::from_bits(p_hex(tok(&mut t, "wait_sum")?)?);
        totals.max_finish_s = f64::from_bits(p_hex(tok(&mut t, "max_finish")?)?);
        totals.last_arrival_s = f64::from_bits(p_hex(tok(&mut t, "last_arrival")?)?);
        totals.max_queue_depth = p_usize(tok(&mut t, "max_queue_depth")?)?;
        totals.latency_ms = parse_sketch(cur.tagged("sketch")?)?;
        let n_classes = p_usize(cur.tagged("classes")?)?;
        for _ in 0..n_classes {
            let rest = cur.tagged("class")?;
            let mut parts = rest.splitn(6, ' ');
            let completed = p_u64(tok(&mut parts, "class completed")?)?;
            let shed = p_u64(tok(&mut parts, "class shed")?)?;
            let slo_hits = p_u64(tok(&mut parts, "class slo_hits")?)?;
            let latency_sum_ms = f64::from_bits(p_hex(tok(&mut parts, "class latency_sum")?)?);
            let slo_tok = tok(&mut parts, "class slo")?;
            let slo_ms = if slo_tok == "-" {
                None
            } else {
                Some(f64::from_bits(p_hex(slo_tok)?))
            };
            let name = tok(&mut parts, "class name")?;
            let mut c = ClassTotals::new(name, slo_ms);
            c.completed = completed;
            c.shed = shed;
            c.slo_hits = slo_hits;
            c.latency_sum_ms = latency_sum_ms;
            c.latency_ms = parse_sketch(cur.tagged("sketch")?)?;
            totals.classes.push(c);
        }
        let n_records = p_usize(cur.tagged("records")?)?;
        for _ in 0..n_records {
            let rest = cur.tagged("record")?;
            let mut t = rest.split_whitespace();
            totals.records.push(RequestRecord {
                id: p_u64(tok(&mut t, "record id")?)?,
                network: p_usize(tok(&mut t, "record network")?)?,
                chip: p_usize(tok(&mut t, "record chip")?)?,
                arrival_s: f64::from_bits(p_hex(tok(&mut t, "record arrival")?)?),
                start_s: f64::from_bits(p_hex(tok(&mut t, "record start")?)?),
                finish_s: f64::from_bits(p_hex(tok(&mut t, "record finish")?)?),
            });
        }
        let n_queued = p_usize(cur.tagged("queued")?)?;
        let mut queue = Vec::with_capacity(n_queued);
        for _ in 0..n_queued {
            let rest = cur.tagged("req")?;
            let mut t = rest.split_whitespace();
            queue.push(Request {
                id: p_u64(tok(&mut t, "queued id")?)?,
                arrival_s: f64::from_bits(p_hex(tok(&mut t, "queued arrival")?)?),
                network: p_usize(tok(&mut t, "queued network")?)?,
                class: p_usize(tok(&mut t, "queued class")?)?,
            });
        }
        let n_events = p_usize(cur.tagged("events")?)?;
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let rest = cur.tagged("event")?;
            let mut t = rest.split_whitespace();
            let time_bits = p_hex(tok(&mut t, "event time")?)?;
            let class = p_u64(tok(&mut t, "event class")?)? as u8;
            let ev_seq = p_u64(tok(&mut t, "event seq")?)?;
            let kind = match tok(&mut t, "event kind")? {
                "fault" => {
                    let which = tok(&mut t, "fault kind")?;
                    let chip = p_usize(tok(&mut t, "fault chip")?)?;
                    match which {
                        "chip_offline" => EventKind::Fault(FaultKind::ChipOffline { chip }),
                        "chip_online" => EventKind::Fault(FaultKind::ChipOnline { chip }),
                        "plcg_offline" => EventKind::Fault(FaultKind::PlcgOffline {
                            chip,
                            count: p_usize(tok(&mut t, "fault count")?)?,
                        }),
                        "plcg_restore" => EventKind::Fault(FaultKind::PlcgRestore {
                            chip,
                            count: p_usize(tok(&mut t, "fault count")?)?,
                        }),
                        other => return Err(format!("unknown fault kind `{other}`")),
                    }
                }
                "completion" => EventKind::Completion {
                    chip: p_usize(tok(&mut t, "completion chip")?)?,
                },
                "warmed" => EventKind::WarmedUp {
                    chip: p_usize(tok(&mut t, "warmed chip")?)?,
                },
                "timer" => EventKind::Timer,
                other => return Err(format!("unknown event kind `{other}`")),
            };
            events.push((time_bits, class, ev_seq, kind));
        }
        let n_chips = p_usize(cur.tagged("chips")?)?;
        let mut chips = Vec::with_capacity(n_chips);
        for _ in 0..n_chips {
            let rest = cur.tagged("chip")?;
            let mut t = rest.split_whitespace();
            chips.push(ChipState {
                online: p_u64(tok(&mut t, "chip online")?)? != 0,
                plcgs_down: p_usize(tok(&mut t, "chip plcgs_down")?)?,
                busy: p_u64(tok(&mut t, "chip busy")?)? != 0,
                busy_s: f64::from_bits(p_hex(tok(&mut t, "chip busy_s")?)?),
                energy_j: f64::from_bits(p_hex(tok(&mut t, "chip energy")?)?),
                served: p_u64(tok(&mut t, "chip served")?)?,
                batches: p_u64(tok(&mut t, "chip batches")?)?,
                parked: p_u64(tok(&mut t, "chip parked")?)? != 0,
                warming: p_u64(tok(&mut t, "chip warming")?)? != 0,
                provisioned_s: f64::from_bits(p_hex(tok(&mut t, "chip provisioned_s")?)?),
                provisioned_at_s: f64::from_bits(p_hex(tok(&mut t, "chip provisioned_at")?)?),
                spin_ups: p_u64(tok(&mut t, "chip spin_ups")?)?,
            });
        }
        // Optional burn-rate alert section (absent on classless runs
        // and on snapshots from pre-alerting builds).
        if let Some(rest) = cur.maybe_tagged("alerts") {
            let mut t = rest.split_whitespace();
            let policy = AlertPolicy {
                target: f64::from_bits(p_hex(tok(&mut t, "alert target")?)?),
                fast: BurnRule {
                    short_s: f64::from_bits(p_hex(tok(&mut t, "fast short")?)?),
                    long_s: f64::from_bits(p_hex(tok(&mut t, "fast long")?)?),
                    factor: f64::from_bits(p_hex(tok(&mut t, "fast factor")?)?),
                },
                slow: BurnRule {
                    short_s: f64::from_bits(p_hex(tok(&mut t, "slow short")?)?),
                    long_s: f64::from_bits(p_hex(tok(&mut t, "slow long")?)?),
                    factor: f64::from_bits(p_hex(tok(&mut t, "slow factor")?)?),
                },
            };
            let n_states = p_usize(tok(&mut t, "alert states")?)?;
            let n_events = p_usize(tok(&mut t, "alert events")?)?;
            let dropped = p_u64(tok(&mut t, "alert dropped")?)?;
            let mut states: Vec<Option<ClassAlertState>> = vec![None; totals.classes.len()];
            for _ in 0..n_states {
                let rest = cur.tagged("astate")?;
                let mut t = rest.split_whitespace();
                let class = p_usize(tok(&mut t, "astate class")?)?;
                if class >= states.len() {
                    return Err(format!(
                        "alert state for class {class} outside the {}-class table",
                        states.len()
                    ));
                }
                let mut st = ClassAlertState::new(&policy);
                st.fast_firing = p_u64(tok(&mut t, "astate fast")?)? != 0;
                st.slow_firing = p_u64(tok(&mut t, "astate slow")?)? != 0;
                for w in [
                    &mut st.fast_short,
                    &mut st.fast_long,
                    &mut st.slow_short,
                    &mut st.slow_long,
                ] {
                    parse_window(cur.tagged("awin")?, w)?;
                }
                states[class] = Some(st);
            }
            let mut events = Vec::with_capacity(n_events);
            for _ in 0..n_events {
                let rest = cur.tagged("aevent")?;
                let mut t = rest.split_whitespace();
                events.push(AlertEvent {
                    class: p_usize(tok(&mut t, "aevent class")?)?,
                    rule: match tok(&mut t, "aevent rule")? {
                        "fast" => AlertRule::Fast,
                        "slow" => AlertRule::Slow,
                        other => return Err(format!("unknown alert rule `{other}`")),
                    },
                    fire: p_u64(tok(&mut t, "aevent fire")?)? != 0,
                    at_s: f64::from_bits(p_hex(tok(&mut t, "aevent at")?)?),
                    burn_short: f64::from_bits(p_hex(tok(&mut t, "aevent burn_short")?)?),
                    burn_long: f64::from_bits(p_hex(tok(&mut t, "aevent burn_long")?)?),
                });
            }
            totals.alerts = AlertBook {
                policy,
                states,
                events,
                dropped,
            };
        }
        Ok(SimSnapshot {
            fingerprint,
            requests,
            seed,
            at_s,
            checkpoints,
            seq,
            next_arrival,
            totals,
            queue,
            events,
            peak_event_queue,
            chips,
        })
    }
}

/// One trailing-window ring as `awin <cur> <k> slot:total:miss ...`
/// (nonzero slots only; bucket width is derived from the policy).
fn write_window(out: &mut String, w: &WindowCounts) {
    let nonzero: Vec<(usize, u64, u64)> = w
        .total
        .iter()
        .zip(&w.miss)
        .enumerate()
        .filter(|(_, (&t, _))| t > 0)
        .map(|(i, (&t, &m))| (i, t, m))
        .collect();
    let _ = write!(out, "awin {} {}", w.cur, nonzero.len());
    for (slot, total, miss) in nonzero {
        let _ = write!(out, " {slot}:{total}:{miss}");
    }
    out.push('\n');
}

/// Fills a policy-initialized [`WindowCounts`] from its `awin` line.
fn parse_window(rest: &str, w: &mut WindowCounts) -> Result<(), String> {
    let mut t = rest.split_whitespace();
    w.cur = p_u64(tok(&mut t, "awin cur")?)?;
    let n = p_usize(tok(&mut t, "awin slots")?)?;
    for _ in 0..n {
        let triple = tok(&mut t, "awin slot")?;
        let mut parts = triple.split(':');
        let slot = p_usize(tok(&mut parts, "awin slot index")?)?;
        if slot >= w.total.len() {
            return Err(format!("awin slot {slot} outside the ring"));
        }
        w.total[slot] = p_u64(tok(&mut parts, "awin total")?)?;
        w.miss[slot] = p_u64(tok(&mut parts, "awin miss")?)?;
    }
    Ok(())
}

fn write_sketch(out: &mut String, s: &QuantileSketch) {
    let buckets = s.nonzero_buckets();
    let _ = write!(
        out,
        "sketch {} {} {:016x} {:016x} {}",
        s.zeros(),
        s.invalid(),
        s.min_bits(),
        s.max_bits(),
        buckets.len(),
    );
    for (idx, count) in &buckets {
        let _ = write!(out, " {idx}:{count}");
    }
    out.push('\n');
}

fn parse_sketch(rest: &str) -> Result<QuantileSketch, String> {
    let mut t = rest.split_whitespace();
    let zeros = p_u64(tok(&mut t, "sketch zeros")?)?;
    let invalid = p_u64(tok(&mut t, "sketch invalid")?)?;
    let min_bits = p_hex(tok(&mut t, "sketch min")?)?;
    let max_bits = p_hex(tok(&mut t, "sketch max")?)?;
    let n = p_usize(tok(&mut t, "sketch buckets")?)?;
    let mut buckets = Vec::with_capacity(n);
    for _ in 0..n {
        let pair = tok(&mut t, "sketch bucket")?;
        let (idx, count) = pair
            .split_once(':')
            .ok_or_else(|| format!("bad sketch bucket `{pair}`"))?;
        let idx: u16 = idx.parse().map_err(|e| format!("bad bucket index: {e}"))?;
        let count = p_u64(count)?;
        buckets.push((idx, count));
    }
    Ok(QuantileSketch::from_parts(
        &buckets, zeros, invalid, min_bits, max_bits,
    ))
}

struct Cursor<'a> {
    lines: std::str::Lines<'a>,
    lineno: usize,
}

impl<'a> Cursor<'a> {
    fn next_line(&mut self) -> Result<&'a str, String> {
        self.lineno += 1;
        self.lines
            .next()
            .ok_or_else(|| format!("line {}: unexpected end of snapshot", self.lineno))
    }

    /// The next line, stripped of its expected `tag ` prefix.
    fn tagged(&mut self, tag: &str) -> Result<&'a str, String> {
        let line = self.next_line()?;
        if line == tag {
            return Ok("");
        }
        line.strip_prefix(tag)
            .and_then(|r| r.strip_prefix(' '))
            .ok_or_else(|| format!("line {}: expected `{tag} ...`, found `{line}`", self.lineno))
    }

    /// Consumes the next line only if it carries `tag` — for optional
    /// trailing sections. Returns `None` (without advancing) at end of
    /// input or on a different tag.
    fn maybe_tagged(&mut self, tag: &str) -> Option<&'a str> {
        let mut ahead = self.lines.clone();
        let line = ahead.next()?;
        let rest = if line == tag {
            Some("")
        } else {
            line.strip_prefix(tag).and_then(|r| r.strip_prefix(' '))
        }?;
        self.lines = ahead;
        self.lineno += 1;
        Some(rest)
    }
}

fn tok<'a>(t: &mut impl Iterator<Item = &'a str>, what: &str) -> Result<&'a str, String> {
    t.next().ok_or_else(|| format!("missing {what}"))
}

fn p_u64(s: &str) -> Result<u64, String> {
    s.parse().map_err(|e| format!("bad integer `{s}`: {e}"))
}

fn p_usize(s: &str) -> Result<usize, String> {
    s.parse().map_err(|e| format!("bad integer `{s}`: {e}"))
}

fn p_hex(s: &str) -> Result<u64, String> {
    u64::from_str_radix(s, 16).map_err(|e| format!("bad hex `{s}`: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimSnapshot {
        let mut interactive = ClassTotals::new("interactive", Some(5.0));
        interactive.completed = 7;
        interactive.slo_hits = 6;
        interactive.latency_sum_ms = 12.5;
        interactive.latency_ms.observe(1.25);
        interactive.latency_ms.observe(3.5);
        let mut batch = ClassTotals::new("batch", None);
        batch.shed = 2;
        let mut totals = RunTotals::new(vec![interactive, batch]);
        totals.offered = 10;
        totals.shed = 2;
        totals.rec_fold = 0xDEAD_BEEF;
        totals.rec_count = 7;
        totals.latency_ms.observe(1.25);
        totals.latency_ms.observe(3.5);
        totals.latency_sum_ms = 12.5;
        totals.wait_sum_ms = 0.5;
        totals.max_finish_s = 0.012;
        totals.last_arrival_s = 0.011;
        totals.max_queue_depth = 4;
        totals.records.push(RequestRecord {
            id: 3,
            network: 1,
            chip: 0,
            arrival_s: 0.001,
            start_s: 0.0015,
            finish_s: 0.003,
        });
        SimSnapshot {
            fingerprint: 0x1234_5678_9ABC_DEF0,
            requests: 100,
            seed: 42,
            at_s: 0.0105,
            checkpoints: 3,
            seq: 17,
            next_arrival: Some(Request {
                id: 10,
                network: 0,
                arrival_s: 0.0107,
                class: 1,
            }),
            totals,
            queue: vec![Request {
                id: 9,
                network: 1,
                arrival_s: 0.0101,
                class: 0,
            }],
            events: vec![
                (
                    0.0108f64.to_bits(),
                    0,
                    5,
                    EventKind::Fault(FaultKind::PlcgRestore { chip: 1, count: 2 }),
                ),
                (
                    0.0110f64.to_bits(),
                    1,
                    12,
                    EventKind::Completion { chip: 0 },
                ),
                (0.0111f64.to_bits(), 1, 14, EventKind::WarmedUp { chip: 1 }),
                (0.0120f64.to_bits(), 3, 15, EventKind::Timer),
            ],
            peak_event_queue: 9,
            chips: vec![ChipState {
                online: true,
                plcgs_down: 2,
                busy: true,
                busy_s: 0.004,
                energy_j: 1.5,
                served: 7,
                batches: 3,
                parked: false,
                warming: false,
                provisioned_s: 0.0,
                provisioned_at_s: 0.0,
                spin_ups: 1,
            }],
        }
    }

    #[test]
    fn snapshot_round_trips_byte_exactly() {
        let snap = sample();
        let text = snap.to_text();
        assert!(text.starts_with("albireo.snapshot/v1\n"));
        let parsed = SimSnapshot::parse(&text).expect("parse");
        assert_eq!(parsed, snap);
        assert_eq!(parsed.to_text(), text, "re-serialization is byte-stable");
    }

    #[test]
    fn snapshot_with_drained_stream_round_trips() {
        let mut snap = sample();
        snap.next_arrival = None;
        let text = snap.to_text();
        let parsed = SimSnapshot::parse(&text).expect("parse");
        assert_eq!(parsed.next_arrival, None);
        assert_eq!(parsed, snap);
    }

    #[test]
    fn tampered_snapshots_are_rejected() {
        let text = sample().to_text();
        // Flip one content byte: the digest no longer matches.
        let tampered = text.replacen("seed 42", "seed 43", 1);
        let err = SimSnapshot::parse(&tampered).unwrap_err();
        assert!(err.contains("digest mismatch"), "{err}");
        // Truncate mid-file: the digest line is gone entirely.
        let truncated = &text[..text.len() / 2];
        assert!(SimSnapshot::parse(truncated).is_err());
        // Wrong schema tag fails even with a correct digest.
        let mut body = text
            .rsplit_once("digest ")
            .map(|(b, _)| b.to_string())
            .unwrap();
        body = body.replacen("albireo.snapshot/v1", "albireo.snapshot/v9", 1);
        let digest = albireo_obs::fnv1a(body.as_bytes());
        let rewritten = format!("{body}digest {digest:016x}\n");
        let err = SimSnapshot::parse(&rewritten).unwrap_err();
        assert!(err.contains("unsupported snapshot schema"), "{err}");
    }

    #[test]
    fn progress_json_reports_the_boundary() {
        let line = sample().progress_json();
        assert!(line.starts_with("{\"schema\": \"albireo.serve.progress/v1\""));
        assert!(line.contains("\"checkpoint\": 3"));
        assert!(line.contains("\"offered\": 10"));
        assert!(line.contains("\"queued\": 1"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn accessors_summarize_the_totals() {
        let snap = sample();
        assert_eq!(snap.offered(), 10);
        assert_eq!(snap.completed(), 7);
        assert_eq!(snap.shed(), 2);
        assert_eq!(snap.queue_len(), 1);
        assert_eq!(snap.pending_events(), 4);
        assert_eq!(snap.checkpoints(), 3);
        assert!(snap.p50_ms() > 0.0);
        assert!(snap.p99_ms() >= snap.p50_ms());
    }
}

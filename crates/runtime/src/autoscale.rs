//! In-sim fleet autoscaling: provisioning chips up and down on queue
//! depth, with a configurable warm-up latency.
//!
//! Three modes:
//!
//! * [`AutoscalePolicy::None`] — the legacy engine: every chip is always
//!   available and **no idle power is accounted** (energy is per-batch
//!   only). Existing runs, digests, and goldens are byte-identical under
//!   this mode.
//! * [`AutoscalePolicy::Static`] — every chip is provisioned for the
//!   whole run and pays its [`idle_power_w`] for every second it is not
//!   serving. This is the honest cost of a statically sized fleet: the
//!   photonic laser/thermal floor runs whether or not requests arrive.
//! * [`AutoscalePolicy::Elastic`] — the first `min_chips` chips are
//!   provisioned at start; the rest are *parked* (consuming nothing).
//!   When the dispatch queue backs up past `up_depth` pending requests
//!   per already-warming chip, the lowest-indexed parked chip spins up,
//!   becoming available only `warmup_s` seconds later (warming chips
//!   draw idle power but cannot serve — thermal lock and laser
//!   stabilization are modeled as unavailability, not as free). Whenever
//!   the system goes fully idle (empty queue, no busy chip), every
//!   provisioned chip above the `min_chips` floor parks again.
//!
//! Scale-up and scale-down decisions are pure functions of DES state at
//! event instants, so autoscaled runs keep the engine's bit-determinism
//! contract unchanged.
//!
//! [`idle_power_w`]: albireo_core::accel::Accelerator::idle_power_w

use std::fmt;

/// The fleet provisioning policy of a serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AutoscalePolicy {
    /// Legacy mode: all chips available, no idle-power accounting.
    None,
    /// All chips provisioned for the whole run, idle power accounted.
    Static,
    /// Queue-depth-driven spin-up/park with a warm-up latency.
    Elastic {
        /// Pending requests per warming chip that trigger a spin-up
        /// (≥ 1).
        up_depth: usize,
        /// Seconds between the spin-up decision and the chip becoming
        /// serviceable (≥ 0; idle power is drawn while warming).
        warmup_s: f64,
        /// Chips that never park (≥ 1; the floor fleet).
        min_chips: usize,
    },
}

impl AutoscalePolicy {
    /// Whether this policy charges idle power for provisioned chips.
    pub fn accounts_idle(&self) -> bool {
        !matches!(self, AutoscalePolicy::None)
    }

    /// A short stable label for reports and CSV keys. Identical to the
    /// [`Display`](fmt::Display) rendering, which [`parse`] inverts
    /// exactly (warm-up is printed through `{}`, Rust's
    /// shortest-round-trip float form).
    ///
    /// [`parse`]: AutoscalePolicy::parse
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// Parses a policy spec: `none`, `static`, or
    /// `elastic:<UP_DEPTH>:<WARMUP_S>[:<MIN_CHIPS>]` (warm-up in
    /// seconds, `min_chips` defaulting to 1).
    pub fn parse(spec: &str) -> Result<AutoscalePolicy, String> {
        let spec = spec.trim();
        if spec.eq_ignore_ascii_case("none") {
            return Ok(AutoscalePolicy::None);
        }
        if spec.eq_ignore_ascii_case("static") {
            return Ok(AutoscalePolicy::Static);
        }
        if let Some(rest) = spec.strip_prefix("elastic:") {
            let mut parts = rest.split(':');
            let up_depth: usize = parts
                .next()
                .unwrap_or("")
                .parse()
                .map_err(|_| format!("bad up-depth in autoscale policy `{spec}`"))?;
            if up_depth == 0 {
                return Err("autoscale up-depth must be at least 1".to_string());
            }
            let warmup_s: f64 = parts
                .next()
                .ok_or_else(|| format!("autoscale policy `{spec}` is missing the warm-up"))?
                .parse()
                .map_err(|_| format!("bad warm-up in autoscale policy `{spec}`"))?;
            if !warmup_s.is_finite() || warmup_s < 0.0 {
                return Err("autoscale warm-up must be finite and non-negative".to_string());
            }
            let min_chips: usize = match parts.next() {
                Some(m) => m
                    .parse()
                    .map_err(|_| format!("bad min-chips in autoscale policy `{spec}`"))?,
                None => 1,
            };
            if min_chips == 0 {
                return Err("autoscale min-chips must be at least 1".to_string());
            }
            if parts.next().is_some() {
                return Err(format!("trailing fields in autoscale policy `{spec}`"));
            }
            return Ok(AutoscalePolicy::Elastic {
                up_depth,
                warmup_s,
                min_chips,
            });
        }
        Err(format!(
            "unknown autoscale policy `{spec}` \
             (try: none, static, elastic:<UP_DEPTH>:<WARMUP_S>[:<MIN_CHIPS>])"
        ))
    }
}

impl fmt::Display for AutoscalePolicy {
    /// The canonical spec string; [`AutoscalePolicy::parse`] inverts it
    /// exactly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutoscalePolicy::None => write!(f, "none"),
            AutoscalePolicy::Static => write!(f, "static"),
            AutoscalePolicy::Elastic {
                up_depth,
                warmup_s,
                min_chips,
            } => write!(f, "elastic:{up_depth}:{warmup_s}:{min_chips}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_display_form() {
        for spec in ["none", "static", "elastic:4:0.0005:1", "elastic:16:0:2"] {
            let p = AutoscalePolicy::parse(spec).unwrap();
            assert_eq!(p.to_string(), spec);
            assert_eq!(AutoscalePolicy::parse(&p.to_string()).unwrap(), p);
            assert_eq!(p.label(), p.to_string());
        }
    }

    #[test]
    fn min_chips_defaults_to_one() {
        assert_eq!(
            AutoscalePolicy::parse("elastic:8:0.001").unwrap(),
            AutoscalePolicy::Elastic {
                up_depth: 8,
                warmup_s: 0.001,
                min_chips: 1
            }
        );
    }

    #[test]
    fn invalid_specs_are_rejected() {
        for bad in [
            "elastic",
            "elastic:0:0.1",
            "elastic:4",
            "elastic:4:-1",
            "elastic:4:inf",
            "elastic:4:0.1:0",
            "elastic:4:0.1:1:9",
            "dynamic",
        ] {
            assert!(AutoscalePolicy::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn only_none_skips_idle_accounting() {
        assert!(!AutoscalePolicy::None.accounts_idle());
        assert!(AutoscalePolicy::Static.accounts_idle());
        assert!(AutoscalePolicy::parse("elastic:4:0.0005:1")
            .unwrap()
            .accounts_idle());
    }
}

//! Batching and admission-control policy for the central dispatch queue.
//!
//! The queue is a single bounded FIFO shared by every chip in the fleet
//! (Albireo has no intra-chip batching — one inference occupies the whole
//! chip — so a "batch" is a *micro-batch*: consecutive same-network
//! requests that share one weight-programming pass, see
//! [`crate::fleet::ServiceCost`]). Batches are therefore always
//! single-network; the queue head defines the network and the batch takes
//! the earliest queued requests of that network, preserving FIFO order
//! (head-of-line semantics are intentional and documented — a released
//! chip never skips the oldest waiting request's network).

/// When the dispatcher may form a batch from the queue head.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchPolicy {
    /// Dispatch a single request as soon as a chip is free.
    Immediate,
    /// Wait until `size` same-network requests are queued (or the arrival
    /// stream has ended, which flushes partial batches).
    SizeN {
        /// Target batch size (≥ 1).
        size: usize,
    },
    /// Dispatch when `max_size` same-network requests are queued **or**
    /// the queue head has waited `max_wait_s`, whichever comes first.
    Deadline {
        /// Longest the queue head may wait before a partial batch is
        /// forced out, s.
        max_wait_s: f64,
        /// Upper bound on batch size.
        max_size: usize,
    },
}

impl BatchPolicy {
    /// A short stable label for reports and CSV keys, e.g. `size4`,
    /// `deadline100us`.
    pub fn label(&self) -> String {
        match self {
            BatchPolicy::Immediate => "immediate".to_string(),
            BatchPolicy::SizeN { size } => format!("size{size}"),
            BatchPolicy::Deadline {
                max_wait_s,
                max_size,
            } => format!("deadline{:.0}us_max{max_size}", max_wait_s * 1e6),
        }
    }

    /// Parses a policy spec: `immediate`, `size:<N>`, or
    /// `deadline:<USEC>[:<MAX>]` (deadline in microseconds, default max
    /// batch 8).
    pub fn parse(spec: &str) -> Result<BatchPolicy, String> {
        let spec = spec.trim();
        if spec.eq_ignore_ascii_case("immediate") {
            return Ok(BatchPolicy::Immediate);
        }
        if let Some(n) = spec
            .strip_prefix("size:")
            .or_else(|| spec.strip_prefix("size"))
        {
            let size: usize = n
                .parse()
                .map_err(|_| format!("bad batch size in policy `{spec}`"))?;
            if size == 0 {
                return Err("batch size must be at least 1".to_string());
            }
            return Ok(BatchPolicy::SizeN { size });
        }
        if let Some(rest) = spec.strip_prefix("deadline:") {
            let mut parts = rest.split(':');
            let usec: f64 = parts
                .next()
                .unwrap_or("")
                .parse()
                .map_err(|_| format!("bad deadline in policy `{spec}`"))?;
            if usec <= 0.0 {
                return Err("deadline must be positive".to_string());
            }
            let max_size: usize = match parts.next() {
                Some(m) => m
                    .parse()
                    .map_err(|_| format!("bad max batch size in policy `{spec}`"))?,
                None => 8,
            };
            if max_size == 0 {
                return Err("max batch size must be at least 1".to_string());
            }
            return Ok(BatchPolicy::Deadline {
                max_wait_s: usec / 1e6,
                max_size,
            });
        }
        Err(format!(
            "unknown policy `{spec}` (try: immediate, size:<N>, deadline:<USEC>[:<MAX>])"
        ))
    }

    /// The largest batch this policy ever dispatches.
    pub fn max_batch(&self) -> usize {
        match self {
            BatchPolicy::Immediate => 1,
            BatchPolicy::SizeN { size } => *size,
            BatchPolicy::Deadline { max_size, .. } => *max_size,
        }
    }
}

/// Admission control for the shared queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionControl {
    /// Requests the queue holds before arrivals are shed. `usize::MAX`
    /// disables shedding.
    pub queue_capacity: usize,
}

impl Default for AdmissionControl {
    /// A bounded queue of 64 requests — deep enough to ride a burst,
    /// shallow enough that shed rate (not unbounded queueing delay)
    /// absorbs sustained overload.
    fn default() -> AdmissionControl {
        AdmissionControl { queue_capacity: 64 }
    }
}

impl AdmissionControl {
    /// An unbounded queue (no shedding).
    pub fn unbounded() -> AdmissionControl {
        AdmissionControl {
            queue_capacity: usize::MAX,
        }
    }

    /// A bounded queue.
    pub fn bounded(queue_capacity: usize) -> AdmissionControl {
        assert!(queue_capacity > 0, "queue capacity must be at least 1");
        AdmissionControl { queue_capacity }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        assert_eq!(
            BatchPolicy::parse("immediate").unwrap(),
            BatchPolicy::Immediate
        );
        assert_eq!(
            BatchPolicy::parse("size:4").unwrap(),
            BatchPolicy::SizeN { size: 4 }
        );
        let d = BatchPolicy::parse("deadline:100:6").unwrap();
        assert_eq!(
            d,
            BatchPolicy::Deadline {
                max_wait_s: 100e-6,
                max_size: 6
            }
        );
        assert_eq!(d.label(), "deadline100us_max6");
        assert_eq!(BatchPolicy::parse("deadline:50").unwrap().max_batch(), 8);
        assert!(BatchPolicy::parse("size:0").is_err());
        assert!(BatchPolicy::parse("deadline:0").is_err());
        assert!(BatchPolicy::parse("fifo").is_err());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(BatchPolicy::Immediate.label(), "immediate");
        assert_eq!(BatchPolicy::SizeN { size: 8 }.label(), "size8");
    }

    #[test]
    fn admission_defaults() {
        assert_eq!(AdmissionControl::default().queue_capacity, 64);
        assert_eq!(AdmissionControl::unbounded().queue_capacity, usize::MAX);
        assert_eq!(AdmissionControl::bounded(8).queue_capacity, 8);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        AdmissionControl::bounded(0);
    }
}

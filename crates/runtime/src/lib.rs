//! `albireo-runtime` — a deterministic multi-chip inference-serving
//! simulator on top of the Albireo performance models.
//!
//! The rest of the workspace answers "how fast is one inference on one
//! chip?" (Tables II/IV, the device sweeps). This crate answers the
//! *serving* question: what latency distribution, goodput, shed rate, and
//! energy-per-request does a small fleet of accelerators deliver under a
//! stochastic request stream — and how gracefully does service degrade
//! when chips or individual compute groups fail mid-run?
//!
//! Fleets are heterogeneous: every chip is a `dyn
//! albireo_core::accel::Accelerator`, so Albireo designs, the photonic
//! baselines (PIXEL, DEAP-CNN), and the reported electronic accelerators
//! (Eyeriss, ENVISION, UNPU) can serve side by side — e.g.
//! [`FleetConfig::parse`]`("albireo_27:A, deap:M, eyeriss", ..)`.
//!
//! Pieces:
//!
//! * [`workload`] — seeded arrival processes (Poisson, bursty, diurnal,
//!   flash-crowd, in-memory trace, JSONL trace replay), the request mix,
//!   and multi-tenant request classes with per-class SLO targets; all
//!   streamed lazily with O(1) generator state;
//! * [`queue`] — the monotone-run / 4-ary-heap hybrid event queue behind
//!   the engine (O(1) pushes for in-order keys, byte-identical pop order
//!   to the historical `BinaryHeap`);
//! * [`fleet`] — chip specs, the fleet, and the memoizing
//!   [`fleet::ServiceOracle`] that turns `(chip, active groups, network)`
//!   into latency/energy through the `Accelerator` trait;
//! * [`policy`] — micro-batching policies and admission control;
//! * [`autoscale`] — fleet provisioning: static idle-power accounting
//!   and queue-depth-driven elastic spin-up/park with warm-up latency;
//! * [`alerts`] — deterministic multi-window SLO burn-rate alerting on
//!   the virtual clock (fire/resolve transitions in the serving report
//!   and the `--report-jsonl` stream);
//! * [`fault`] — timed chip/PLCG fault scenarios, correlated-failure
//!   specs ([`fault::FaultSpec`]: rack groups, thermal epochs, repair
//!   crews), and classification of analog fault sets;
//! * [`sim`] — the discrete-event engine ([`sim::simulate`], plus
//!   [`sim::simulate_observed`] recording spans/metrics into an
//!   `albireo_obs::Obs` on the virtual clock, and
//!   [`sim::simulate_checkpointed`] / [`sim::resume_checkpointed`] for
//!   interruptible runs);
//! * [`snapshot`] — the versioned, self-digesting checkpoint format
//!   (`albireo.snapshot/v1`) behind checkpoint/resume;
//! * [`report`] — service metrics, text/CSV/JSON renderings, digests;
//! * [`study`] — the replicated (fleet × rate × policy) sweep, fanned
//!   deterministically through `albireo-parallel`.
//!
//! # Determinism contract
//!
//! A run is a pure function of `(fleet, config)`: the event queue's
//! ordering is total (time bits, event class, insertion sequence), every
//! random draw comes from seeds derived with `albireo_parallel::split_seed`
//! from the run's coordinates, and individual runs are single-threaded.
//! Replica and sweep fan-out go through `Parallelism::map_indexed`, so
//! study results — and their digests — are bit-identical at any thread
//! count. DESIGN.md §8 states the full contract.

pub mod alerts;
pub mod autoscale;
pub mod fault;
pub mod fleet;
pub mod policy;
pub mod queue;
pub mod report;
pub mod sim;
pub mod snapshot;
pub mod study;
pub mod workload;

pub use alerts::{AlertEvent, AlertPolicy, AlertRule, BurnRule};
pub use autoscale::AutoscalePolicy;
pub use fault::{FaultEvent, FaultKind, FaultScenario, FaultSpec};
pub use fleet::{ChipSpec, FleetConfig, ServiceCost, ServiceOracle};
pub use policy::{AdmissionControl, BatchPolicy};
pub use queue::{EventKey, EventQueue};
pub use report::{ChipReport, ClassReport, RequestRecord, ServiceReport};
pub use sim::{
    resume_checkpointed, simulate, simulate_checkpointed, simulate_observed, trace_track_names,
    ServeConfig, ServeOutcome,
};
pub use snapshot::{SimSnapshot, SNAPSHOT_SCHEMA};
pub use study::{replicate, run_serving_study, ServingStudyReport, StudyOptions, StudyRun};
pub use workload::{ArrivalProcess, ClassSpec, Request, RequestStream, Workload};

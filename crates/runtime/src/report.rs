//! Service metrics: the per-run report, its text/CSV/JSON renderings,
//! and the order-sensitive digest used by the determinism checks.
//!
//! Conventions mirror `albireo-bench`'s `BENCH_parallel.json`: floats are
//! rendered through the shared [`albireo_core::report::json`] helpers
//! (`{:.6}`), the digest folds values with
//! `digest.rotate_left(7) ^ bits` (order-sensitive, so it also certifies
//! *dispatch order*, not just the multiset of results), and the JSON is
//! hand-rolled against a versioned schema string
//! (`albireo.bench.serving/v4`). The full field list is documented in
//! DESIGN.md §8 and §11.
//!
//! ## Streaming accumulation
//!
//! The engine no longer hands this module a `Vec` of every record:
//! million-request runs accumulate a `RunTotals` — latency quantile
//! sketch (`albireo_obs::QuantileSketch`, O(1) memory), running sums,
//! and the **record digest fold**. The digest definition is unchanged
//! from the materialized era; it is computed incrementally using the
//! rotate-distributes-over-xor identity: folding `k` values onto seed
//! `d₀` equals `rotl(d₀, 7k mod 64) ^ F` where `F` is the same fold
//! started from zero. Reports therefore stay byte-identical to the
//! record-materializing implementation while holding O(1) state.

use crate::alerts::{AlertBook, AlertEvent, AlertPolicy};
use crate::fleet::FleetConfig;
use crate::sim::ServeConfig;
use albireo_core::report::json;
use albireo_obs::QuantileSketch;

/// One served request's lifecycle, in dispatch order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// Request id (arrival order within the workload).
    pub id: u64,
    /// Network index into the fleet's model table.
    pub network: usize,
    /// Fleet chip that served it.
    pub chip: usize,
    /// Arrival on the virtual clock, s.
    pub arrival_s: f64,
    /// Batch dispatch instant, s.
    pub start_s: f64,
    /// Completion instant, s.
    pub finish_s: f64,
}

/// Per-chip serving totals.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipReport {
    /// Chip name from the fleet spec.
    pub name: String,
    /// Requests completed on this chip.
    pub served: u64,
    /// Micro-batches dispatched to this chip.
    pub batches: u64,
    /// Total busy time, s.
    pub busy_s: f64,
    /// Total energy, J.
    pub energy_j: f64,
    /// Whether the chip could still accept work when the run ended.
    pub online_at_end: bool,
    /// PLCGs retired by the fault scenario.
    pub plcgs_down: usize,
    /// Seconds the chip was provisioned (busy, idle, or warming). Zero
    /// when the run's [`AutoscalePolicy`](crate::AutoscalePolicy) is
    /// `None` — the legacy engine has no provisioning notion.
    pub provisioned_s: f64,
    /// Idle energy charged at the accelerator's
    /// [`idle_power_w`](albireo_core::accel::Accelerator::idle_power_w)
    /// over `provisioned_s − busy_s` — already included in `energy_j`.
    /// Zero under `AutoscalePolicy::None`.
    pub idle_energy_j: f64,
    /// Elastic spin-ups of this chip.
    pub spin_ups: u64,
}

impl ChipReport {
    /// Fraction of the run this chip spent serving.
    pub fn utilization(&self, makespan_s: f64) -> f64 {
        if makespan_s > 0.0 {
            self.busy_s / makespan_s
        } else {
            0.0
        }
    }
}

/// Per-class accumulator the engine fills while serving (one per entry
/// in the workload's class table).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ClassTotals {
    pub name: String,
    pub slo_ms: Option<f64>,
    pub completed: u64,
    pub shed: u64,
    /// Completed requests whose end-to-end latency met the SLO.
    pub slo_hits: u64,
    pub latency_sum_ms: f64,
    pub latency_ms: QuantileSketch,
}

impl ClassTotals {
    pub(crate) fn new(name: &str, slo_ms: Option<f64>) -> ClassTotals {
        ClassTotals {
            name: name.to_string(),
            slo_ms,
            completed: 0,
            shed: 0,
            slo_hits: 0,
            latency_sum_ms: 0.0,
            latency_ms: QuantileSketch::new(),
        }
    }
}

/// Everything a finished run accumulated in streaming fashion — the
/// engine→report handoff. O(1) in the number of requests except for the
/// explicitly capped `records` sample.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RunTotals {
    /// Arrivals actually streamed (equals the configured request count
    /// for generated processes; a short trace offers fewer).
    pub offered: u64,
    pub shed: u64,
    /// Record digest folded from zero, in dispatch order.
    pub rec_fold: u64,
    /// Records folded (= completed).
    pub rec_count: u64,
    /// End-to-end latency sketch, ms.
    pub latency_ms: QuantileSketch,
    pub latency_sum_ms: f64,
    pub wait_sum_ms: f64,
    pub max_finish_s: f64,
    pub last_arrival_s: f64,
    pub max_queue_depth: usize,
    /// High-water mark of the DES event queue.
    pub peak_event_queue: usize,
    /// First `record_cap` records, in dispatch order.
    pub records: Vec<RequestRecord>,
    /// Per-class accumulators (empty when no classes configured).
    pub classes: Vec<ClassTotals>,
    /// Burn-rate alerting ledger (disabled unless a class has an SLO).
    pub alerts: AlertBook,
}

/// Per-tenant-class service metrics, reported alongside the run totals.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// Class label from the workload's [`crate::workload::ClassSpec`].
    pub name: String,
    /// Latency SLO target, ms (`None` = best-effort).
    pub slo_ms: Option<f64>,
    /// Requests of this class completed.
    pub completed: u64,
    /// Requests of this class shed.
    pub shed: u64,
    /// Median end-to-end latency, ms (sketch estimate).
    pub p50_ms: f64,
    /// 95th-percentile latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// 99.9th-percentile latency, ms.
    pub p999_ms: f64,
    /// Mean latency, ms.
    pub mean_latency_ms: f64,
    /// Fraction of *offered* requests (completed + shed) that finished
    /// within the SLO — shed requests count as misses, so overload shows
    /// up here even when completed latencies look healthy. `None` when
    /// the class is best-effort; vacuously 1.0 when nothing was offered.
    pub slo_attainment: Option<f64>,
    /// Burn-rate alerts fired for this class over the run.
    pub alerts_fired: u64,
    /// Whether a burn-rate alert was still firing when the run ended.
    pub alert_active: bool,
}

fn fold(digest: u64, bits: u64) -> u64 {
    digest.rotate_left(7) ^ bits
}

impl RunTotals {
    pub(crate) fn new(classes: Vec<ClassTotals>) -> RunTotals {
        RunTotals {
            offered: 0,
            shed: 0,
            rec_fold: 0,
            rec_count: 0,
            latency_ms: QuantileSketch::new(),
            latency_sum_ms: 0.0,
            wait_sum_ms: 0.0,
            max_finish_s: 0.0,
            last_arrival_s: 0.0,
            max_queue_depth: 0,
            peak_event_queue: 0,
            records: Vec::new(),
            classes,
            alerts: AlertBook::disabled(),
        }
    }

    /// [`RunTotals::new`] with burn-rate alerting armed for every class
    /// that carries an SLO (a no-op book otherwise).
    pub(crate) fn with_alerts(classes: Vec<ClassTotals>, policy: AlertPolicy) -> RunTotals {
        let slos: Vec<Option<f64>> = classes.iter().map(|c| c.slo_ms).collect();
        let mut t = RunTotals::new(classes);
        t.alerts = AlertBook::for_classes(policy, &slos);
        t
    }
}

/// The service report of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Fleet label (e.g. `albireo_9+albireo_27`).
    pub fleet_label: String,
    /// Batching-policy label.
    pub policy_label: String,
    /// Arrival-process label.
    pub arrival_label: String,
    /// Mean offered rate, requests/s.
    pub offered_rate_rps: f64,
    /// Queue capacity (`usize::MAX` = unbounded).
    pub queue_capacity: usize,
    /// Master seed.
    pub seed: u64,
    /// Requests offered.
    pub offered: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed (admission control or stranded at end of run).
    pub shed: u64,
    /// `shed / offered`.
    pub shed_rate: f64,
    /// Median service latency (arrival → completion), ms (sketch
    /// estimate, within `QuantileSketch::RELATIVE_ERROR_BOUND`).
    pub p50_ms: f64,
    /// 95th-percentile latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// 99.9th-percentile latency, ms.
    pub p999_ms: f64,
    /// Mean latency, ms (exact).
    pub mean_latency_ms: f64,
    /// Mean queueing delay (arrival → dispatch), ms (exact).
    pub mean_wait_ms: f64,
    /// Completed requests per second of makespan.
    pub goodput_rps: f64,
    /// Virtual time from first arrival to last completion, s.
    pub makespan_s: f64,
    /// Total fleet energy, J.
    pub energy_total_j: f64,
    /// `energy_total / completed`, J.
    pub energy_per_request_j: f64,
    /// Mean requests per dispatched micro-batch.
    pub mean_batch_size: f64,
    /// Deepest the queue got.
    pub max_queue_depth: usize,
    /// High-water mark of the DES event queue — with streamed arrivals
    /// this stays O(fleet + in-flight), not O(requests).
    pub peak_event_queue: usize,
    /// Occupied latency-sketch buckets (bounded by
    /// `QuantileSketch::MAX_BUCKETS` regardless of run length).
    pub sketch_buckets: usize,
    /// Per-tenant-class metrics, in class-table order (empty when the
    /// workload configures no classes).
    pub classes: Vec<ClassReport>,
    /// Per-chip totals, in fleet order.
    pub per_chip: Vec<ChipReport>,
    /// The first `record_cap` per-request records, in dispatch order —
    /// a bounded sample; the digest always covers *every* record.
    pub records: Vec<RequestRecord>,
    /// Burn-rate alert policy description (see
    /// [`AlertPolicy::label`]).
    pub alert_policy: String,
    /// Fire/resolve transitions in virtual-time order (capped at the
    /// engine's event cap; `alert_events_dropped` counts the overflow).
    pub alert_events: Vec<AlertEvent>,
    /// Transitions beyond the event cap.
    pub alert_events_dropped: u64,
    /// The run digest, computed incrementally during the run (records
    /// are not required to recompute it). Alert state is deliberately
    /// outside the digest: alerting observes the run, never alters it.
    digest: u64,
}

impl ServiceReport {
    /// Builds the report from a finished run's streaming accumulators.
    pub(crate) fn from_run(
        cfg: &ServeConfig,
        fleet: &FleetConfig,
        per_chip: Vec<ChipReport>,
        totals: RunTotals,
    ) -> ServiceReport {
        let completed = totals.rec_count;
        let offered = totals.offered;
        let makespan_s = totals.max_finish_s.max(totals.last_arrival_s);
        let mean_latency_ms = if completed > 0 {
            totals.latency_sum_ms / completed as f64
        } else {
            0.0
        };
        let mean_wait_ms = if completed > 0 {
            totals.wait_sum_ms / completed as f64
        } else {
            0.0
        };
        let energy_total_j: f64 = per_chip.iter().map(|c| c.energy_j).sum();
        let batches: u64 = per_chip.iter().map(|c| c.batches).sum();

        // Digest: identical to folding (offered, completed, shed), every
        // record, then the chip totals, one value at a time. The record
        // section was folded from zero during the run; rotation
        // distributes over xor, so splicing it onto the prefix is exact.
        let mut d = 0xA1B1_9E0Au64;
        d = fold(d, offered);
        d = fold(d, completed);
        d = fold(d, totals.shed);
        d = d.rotate_left(((totals.rec_count.wrapping_mul(6).wrapping_mul(7)) % 64) as u32)
            ^ totals.rec_fold;
        for c in &per_chip {
            d = fold(d, c.served);
            d = fold(d, c.batches);
            d = fold(d, c.busy_s.to_bits());
            d = fold(d, c.energy_j.to_bits());
            d = fold(d, c.plcgs_down as u64);
            d = fold(d, c.online_at_end as u64);
        }

        let classes = totals
            .classes
            .iter()
            .enumerate()
            .map(|(ci, ct)| ClassReport {
                name: ct.name.clone(),
                slo_ms: ct.slo_ms,
                completed: ct.completed,
                shed: ct.shed,
                p50_ms: ct.latency_ms.quantile(0.50),
                p95_ms: ct.latency_ms.quantile(0.95),
                p99_ms: ct.latency_ms.quantile(0.99),
                p999_ms: ct.latency_ms.quantile(0.999),
                mean_latency_ms: if ct.completed > 0 {
                    ct.latency_sum_ms / ct.completed as f64
                } else {
                    0.0
                },
                slo_attainment: ct.slo_ms.map(|_| {
                    let offered_class = ct.completed + ct.shed;
                    if offered_class > 0 {
                        ct.slo_hits as f64 / offered_class as f64
                    } else {
                        1.0
                    }
                }),
                alerts_fired: totals.alerts.fired(ci),
                alert_active: totals.alerts.active(ci),
            })
            .collect();

        ServiceReport {
            fleet_label: fleet.label(),
            policy_label: cfg.policy.label(),
            arrival_label: cfg.workload.process.label().to_string(),
            offered_rate_rps: cfg.workload.process.mean_rate_rps(),
            queue_capacity: cfg.admission.queue_capacity,
            seed: cfg.seed,
            offered,
            completed,
            shed: totals.shed,
            shed_rate: if offered > 0 {
                totals.shed as f64 / offered as f64
            } else {
                0.0
            },
            p50_ms: totals.latency_ms.quantile(0.50),
            p95_ms: totals.latency_ms.quantile(0.95),
            p99_ms: totals.latency_ms.quantile(0.99),
            p999_ms: totals.latency_ms.quantile(0.999),
            mean_latency_ms,
            mean_wait_ms,
            goodput_rps: if makespan_s > 0.0 {
                completed as f64 / makespan_s
            } else {
                0.0
            },
            makespan_s,
            energy_total_j,
            energy_per_request_j: if completed > 0 {
                energy_total_j / completed as f64
            } else {
                0.0
            },
            mean_batch_size: if batches > 0 {
                completed as f64 / batches as f64
            } else {
                0.0
            },
            max_queue_depth: totals.max_queue_depth,
            peak_event_queue: totals.peak_event_queue,
            sketch_buckets: totals.latency_ms.occupied_buckets(),
            classes,
            per_chip,
            records: totals.records,
            alert_policy: totals.alerts.policy.label(),
            alert_events: totals.alerts.events,
            alert_events_dropped: totals.alerts.dropped,
            digest: d,
        }
    }

    /// Order-sensitive digest over the full run outcome: every request
    /// record in dispatch order, the shed count, and the per-chip totals.
    /// Two runs with the same digest served the same requests on the same
    /// chips at the same virtual instants. Computed incrementally during
    /// the run, so it covers all records even when `records` is capped.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The digest as a fixed-width hex string (what reports print).
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest())
    }

    fn capacity_label(&self) -> String {
        if self.queue_capacity == usize::MAX {
            "unbounded".to_string()
        } else {
            self.queue_capacity.to_string()
        }
    }

    /// Human-readable multi-line summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "serving report  fleet={}  policy={}  arrival={}  seed={}\n",
            self.fleet_label, self.policy_label, self.arrival_label, self.seed
        ));
        out.push_str(&format!(
            "  offered {} req at {:.1} rps  queue_cap {}\n",
            self.offered,
            self.offered_rate_rps,
            self.capacity_label()
        ));
        out.push_str(&format!(
            "  completed {}  shed {} ({:.2}%)  goodput {:.1} rps  makespan {:.6} s\n",
            self.completed,
            self.shed,
            self.shed_rate * 100.0,
            self.goodput_rps,
            self.makespan_s
        ));
        out.push_str(&format!(
            "  latency ms  p50 {:.6}  p95 {:.6}  p99 {:.6}  p99.9 {:.6}  mean {:.6}  wait {:.6}\n",
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.p999_ms,
            self.mean_latency_ms,
            self.mean_wait_ms
        ));
        out.push_str(&format!(
            "  energy {:.6} J total  {:.6} mJ/request  mean batch {:.3}  max queue {}\n",
            self.energy_total_j,
            self.energy_per_request_j * 1e3,
            self.mean_batch_size,
            self.max_queue_depth
        ));
        out.push_str(&format!(
            "  memory  peak events {}  sketch buckets {}\n",
            self.peak_event_queue, self.sketch_buckets
        ));
        for c in &self.classes {
            let slo = match (c.slo_ms, c.slo_attainment) {
                (Some(slo_ms), Some(att)) => {
                    format!("  slo {slo_ms:.3} ms attained {:.2}%", att * 100.0)
                }
                _ => "  best-effort".to_string(),
            };
            out.push_str(&format!(
                "  class {:<12} completed {:>8}  shed {:>6}  p50 {:.6}  p99 {:.6}{}{}\n",
                c.name,
                c.completed,
                c.shed,
                c.p50_ms,
                c.p99_ms,
                slo,
                match (c.alerts_fired, c.alert_active) {
                    (0, _) => String::new(),
                    (n, true) => format!("  {n} alert(s), FIRING"),
                    (n, false) => format!("  {n} alert(s), resolved"),
                }
            ));
        }
        if !self.alert_events.is_empty() || self.alert_events_dropped > 0 {
            out.push_str(&format!(
                "  alerts {} transition(s)  {} dropped  policy {}\n",
                self.alert_events.len(),
                self.alert_events_dropped,
                self.alert_policy
            ));
            const SHOWN: usize = 16;
            for e in self.alert_events.iter().take(SHOWN) {
                let class = self
                    .classes
                    .get(e.class)
                    .map(|c| c.name.as_str())
                    .unwrap_or("?");
                out.push_str(&format!(
                    "    {} {:<8} {:<12} at {:.6} s  burn short {:.2} long {:.2}\n",
                    if e.fire { "FIRE   " } else { "resolve" },
                    e.rule.label(),
                    class,
                    e.at_s,
                    e.burn_short,
                    e.burn_long
                ));
            }
            if self.alert_events.len() > SHOWN {
                out.push_str(&format!(
                    "    ... {} more transition(s)\n",
                    self.alert_events.len() - SHOWN
                ));
            }
        }
        for c in &self.per_chip {
            out.push_str(&format!(
                "  chip {:<14} served {:>6}  batches {:>6}  util {:>6.2}%  energy {:.6} J  {}{}{}\n",
                c.name,
                c.served,
                c.batches,
                c.utilization(self.makespan_s) * 100.0,
                c.energy_j,
                if c.online_at_end { "online" } else { "OFFLINE" },
                if c.plcgs_down > 0 {
                    format!(" ({} PLCGs down)", c.plcgs_down)
                } else {
                    String::new()
                },
                if c.provisioned_s > 0.0 {
                    format!(
                        " (idle {:.6} J over {:.6} s, {} spin-up(s))",
                        c.idle_energy_j, c.provisioned_s, c.spin_ups
                    )
                } else {
                    String::new()
                }
            ));
        }
        out.push_str(&format!("  digest {}\n", self.digest_hex()));
        out
    }

    /// Header row for the serving-study CSV.
    pub fn csv_header() -> &'static str {
        "fleet,policy,arrival,rate_rps,queue_cap,seed,offered,completed,shed,shed_rate,\
         p50_ms,p95_ms,p99_ms,p999_ms,mean_latency_ms,mean_wait_ms,goodput_rps,\
         makespan_s,energy_total_j,energy_per_request_mj,mean_batch_size,digest"
    }

    /// One CSV row matching [`ServiceReport::csv_header`].
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{:.3},{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.3},{:.6},{:.6},{:.6},{:.3},{}",
            self.fleet_label,
            self.policy_label,
            self.arrival_label,
            self.offered_rate_rps,
            self.capacity_label(),
            self.seed,
            self.offered,
            self.completed,
            self.shed,
            self.shed_rate,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.p999_ms,
            self.mean_latency_ms,
            self.mean_wait_ms,
            self.goodput_rps,
            self.makespan_s,
            self.energy_total_j,
            self.energy_per_request_j * 1e3,
            self.mean_batch_size,
            self.digest_hex()
        )
    }

    /// Hand-rolled JSON digest of the run (schema
    /// `albireo.bench.serving/v4`, documented in DESIGN.md §8/§11/§15;
    /// v3 added the per-chip autoscaling fields, v4 the per-class
    /// burn-rate alert summary and the `alerts` transition log). Does
    /// not embed per-request records; the digest covers them.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"albireo.bench.serving/v4\",\n");
        s.push_str(&format!("  \"fleet\": \"{}\",\n", self.fleet_label));
        s.push_str(&format!("  \"policy\": \"{}\",\n", self.policy_label));
        s.push_str(&format!("  \"arrival\": \"{}\",\n", self.arrival_label));
        s.push_str(&format!(
            "  \"rate_rps\": {},\n",
            json::num(self.offered_rate_rps)
        ));
        s.push_str(&format!(
            "  \"queue_capacity\": \"{}\",\n",
            self.capacity_label()
        ));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"offered\": {},\n", self.offered));
        s.push_str(&format!("  \"completed\": {},\n", self.completed));
        s.push_str(&format!("  \"shed\": {},\n", self.shed));
        s.push_str(&format!(
            "  \"shed_rate\": {},\n",
            json::num(self.shed_rate)
        ));
        s.push_str("  \"latency_ms\": {\n");
        s.push_str(&format!("    \"p50\": {},\n", json::num(self.p50_ms)));
        s.push_str(&format!("    \"p95\": {},\n", json::num(self.p95_ms)));
        s.push_str(&format!("    \"p99\": {},\n", json::num(self.p99_ms)));
        s.push_str(&format!("    \"p999\": {},\n", json::num(self.p999_ms)));
        s.push_str(&format!(
            "    \"mean\": {},\n",
            json::num(self.mean_latency_ms)
        ));
        s.push_str(&format!(
            "    \"mean_wait\": {}\n",
            json::num(self.mean_wait_ms)
        ));
        s.push_str("  },\n");
        s.push_str(&format!(
            "  \"goodput_rps\": {},\n",
            json::num(self.goodput_rps)
        ));
        s.push_str(&format!(
            "  \"makespan_s\": {},\n",
            json::num(self.makespan_s)
        ));
        s.push_str(&format!(
            "  \"energy_total_j\": {},\n",
            json::num(self.energy_total_j)
        ));
        s.push_str(&format!(
            "  \"energy_per_request_mj\": {},\n",
            json::num(self.energy_per_request_j * 1e3)
        ));
        s.push_str(&format!(
            "  \"mean_batch_size\": {},\n",
            json::num(self.mean_batch_size)
        ));
        s.push_str(&format!(
            "  \"max_queue_depth\": {},\n",
            self.max_queue_depth
        ));
        s.push_str(&format!(
            "  \"peak_event_queue\": {},\n",
            self.peak_event_queue
        ));
        s.push_str(&format!("  \"sketch_buckets\": {},\n", self.sketch_buckets));
        s.push_str("  \"classes\": [\n");
        for (i, c) in self.classes.iter().enumerate() {
            let slo_ms = c
                .slo_ms
                .map_or("null".to_string(), |v| json::num(v).to_string());
            let attained = c
                .slo_attainment
                .map_or("null".to_string(), |v| json::num(v).to_string());
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"slo_ms\": {}, \"completed\": {}, \"shed\": {}, \
                 \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}, \"p999_ms\": {}, \
                 \"mean_latency_ms\": {}, \"slo_attainment\": {}, \
                 \"alerts_fired\": {}, \"alert_active\": {}}}{}\n",
                c.name,
                slo_ms,
                c.completed,
                c.shed,
                json::num(c.p50_ms),
                json::num(c.p95_ms),
                json::num(c.p99_ms),
                json::num(c.p999_ms),
                json::num(c.mean_latency_ms),
                attained,
                c.alerts_fired,
                c.alert_active,
                json::sep(i, self.classes.len())
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"chips\": [\n");
        for (i, c) in self.per_chip.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"served\": {}, \"batches\": {}, \"utilization\": {}, \"energy_j\": {}, \"idle_energy_j\": {}, \"provisioned_s\": {}, \"spin_ups\": {}, \"online\": {}, \"plcgs_down\": {}}}{}\n",
                c.name,
                c.served,
                c.batches,
                json::num(c.utilization(self.makespan_s)),
                json::num(c.energy_j),
                json::num(c.idle_energy_j),
                json::num(c.provisioned_s),
                c.spin_ups,
                c.online_at_end,
                c.plcgs_down,
                json::sep(i, self.per_chip.len())
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"alerts\": {\n");
        s.push_str(&format!("    \"policy\": \"{}\",\n", self.alert_policy));
        s.push_str("    \"events\": [\n");
        for (i, e) in self.alert_events.iter().enumerate() {
            let class = self
                .classes
                .get(e.class)
                .map(|c| c.name.as_str())
                .unwrap_or("?");
            s.push_str(&format!(
                "      {{\"class\": \"{}\", \"rule\": \"{}\", \"type\": \"{}\", \
                 \"at_s\": {}, \"burn_short\": {}, \"burn_long\": {}}}{}\n",
                class,
                e.rule.label(),
                if e.fire { "fire" } else { "resolve" },
                json::num(e.at_s),
                json::num(e.burn_short),
                json::num(e.burn_long),
                json::sep(i, self.alert_events.len())
            ));
        }
        s.push_str("    ],\n");
        s.push_str(&format!("    \"dropped\": {}\n", self.alert_events_dropped));
        s.push_str("  },\n");
        s.push_str(&format!("  \"digest\": \"{}\"\n", self.digest_hex()));
        s.push_str("}\n");
        s
    }

    /// [`to_json`](ServiceReport::to_json) with an `"obs"` member — the
    /// run's metrics snapshot under the `albireo.obs/v1` schema —
    /// spliced in ahead of the digest. The default rendering is
    /// unchanged; metrics appear only when a snapshot is supplied.
    pub fn to_json_with_metrics(&self, metrics: &albireo_obs::MetricsSnapshot) -> String {
        let base = self.to_json();
        let needle = "  \"digest\": ";
        let idx = base.rfind(needle).expect("digest key present");
        let mut s = String::with_capacity(base.len() + 512);
        s.push_str(&base[..idx]);
        s.push_str("  \"obs\": ");
        for (i, line) in metrics.to_json().lines().enumerate() {
            if i > 0 {
                s.push_str("\n  ");
            }
            s.push_str(line);
        }
        s.push_str(",\n");
        s.push_str(&base[idx..]);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renderings_carry_the_digest() {
        let fleet = FleetConfig::paper_pair();
        let cfg = ServeConfig::poisson(3000.0, 120, 9, 0);
        let report = crate::sim::simulate(&fleet, &cfg);
        let hex = report.digest_hex();
        assert_eq!(hex.len(), 16);
        assert!(report.render_text().contains(&hex));
        assert!(report.csv_row().ends_with(&hex));
        let json = report.to_json();
        assert!(json.contains("albireo.bench.serving/v4"));
        assert!(json.contains(&hex));
        assert_eq!(
            ServiceReport::csv_header().split(',').count(),
            report.csv_row().split(',').count()
        );
    }

    #[test]
    fn json_with_metrics_embeds_obs_snapshot() {
        let fleet = FleetConfig::paper_pair();
        let cfg = ServeConfig::poisson(3000.0, 120, 9, 0);
        let obs = albireo_obs::Obs::enabled();
        let report = crate::sim::simulate_observed(&fleet, &cfg, &obs);
        let json = report.to_json_with_metrics(&obs.snapshot());
        assert!(json.contains("\"obs\": {"));
        assert!(json.contains("albireo.obs/v1"));
        assert!(json.contains("serve.completed"));
        // Still balanced, still digest-terminated, base JSON unchanged.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains(&report.digest_hex()));
        assert!(!report.to_json().contains("\"obs\""));
    }

    #[test]
    fn json_is_stable_across_identical_runs() {
        let fleet = FleetConfig::paper_pair();
        let cfg = ServeConfig::poisson(3000.0, 120, 9, 0);
        let a = crate::sim::simulate(&fleet, &cfg).to_json();
        let b = crate::sim::simulate(&fleet, &cfg).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_completion_run_reports_clean_zeros() {
        // A run where everything sheds (or nothing arrives) must render
        // zeros, not NaN — the historical sort-based percentile path was
        // fine here, and the sketch path must stay fine.
        let fleet = FleetConfig::paper_pair();
        let cfg = ServeConfig::poisson(3000.0, 120, 9, 0);
        let totals = RunTotals::new(vec![ClassTotals::new("t", Some(5.0))]);
        let per_chip = vec![ChipReport {
            name: "c".to_string(),
            served: 0,
            batches: 0,
            busy_s: 0.0,
            energy_j: 0.0,
            online_at_end: true,
            plcgs_down: 0,
            provisioned_s: 0.0,
            idle_energy_j: 0.0,
            spin_ups: 0,
        }];
        let r = ServiceReport::from_run(&cfg, &fleet, per_chip, totals);
        for v in [
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.p999_ms,
            r.mean_latency_ms,
            r.mean_wait_ms,
            r.goodput_rps,
            r.energy_per_request_j,
            r.mean_batch_size,
            r.shed_rate,
        ] {
            assert_eq!(v, 0.0, "expected clean zero, got {v}");
        }
        assert_eq!(r.classes[0].slo_attainment, Some(1.0), "vacuous SLO");
        assert!(!r.to_json().contains("NaN"));
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        // One completed request: every percentile must equal its exact
        // latency (the sketch clamps estimates to [min, max]).
        let fleet = FleetConfig::paper_pair();
        let cfg = ServeConfig::poisson(3000.0, 1, 9, 0);
        let report = crate::sim::simulate(&fleet, &cfg);
        assert_eq!(report.completed, 1);
        assert_eq!(report.p50_ms, report.mean_latency_ms);
        assert_eq!(report.p50_ms, report.p95_ms);
        assert_eq!(report.p95_ms, report.p99_ms);
        assert_eq!(report.p99_ms, report.p999_ms);
        assert!(report.p50_ms > 0.0);
    }

    #[test]
    fn streamed_digest_matches_reference_fold() {
        // The incremental digest must equal folding the same values
        // sequentially through one accumulator (the materialized-era
        // definition).
        let fleet = FleetConfig::paper_pair();
        let cfg = ServeConfig::poisson(3000.0, 200, 9, 0);
        let report = crate::sim::simulate(&fleet, &cfg);
        assert_eq!(report.records.len() as u64, report.completed);
        let mut d = 0xA1B1_9E0Au64;
        d = fold(d, report.offered);
        d = fold(d, report.completed);
        d = fold(d, report.shed);
        for r in &report.records {
            d = fold(d, r.id);
            d = fold(d, r.network as u64);
            d = fold(d, r.chip as u64);
            d = fold(d, r.arrival_s.to_bits());
            d = fold(d, r.start_s.to_bits());
            d = fold(d, r.finish_s.to_bits());
        }
        for c in &report.per_chip {
            d = fold(d, c.served);
            d = fold(d, c.batches);
            d = fold(d, c.busy_s.to_bits());
            d = fold(d, c.energy_j.to_bits());
            d = fold(d, c.plcgs_down as u64);
            d = fold(d, c.online_at_end as u64);
        }
        assert_eq!(report.digest(), d);
    }
}

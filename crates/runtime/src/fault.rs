//! The fault layer: timed availability events applied to the fleet
//! mid-run, for graceful-degradation studies.
//!
//! Two granularities are modelled, mirroring the analog fault-injection
//! extension (`albireo_core::analog::Fault`):
//!
//! * **chip-level** — a chip goes offline (and may later return): it
//!   finishes its in-flight batch but accepts no new work;
//! * **PLCG-level** — `count` of a chip's PLCGs are retired: the chip
//!   keeps serving from a `ChipConfig` with fewer groups, so service
//!   times degrade per the dataflow model (`⌈Wm/Ng⌉` grows).
//!
//! [`FaultKind::from_analog`] classifies an analog [`FaultSet`] into a
//! service-level action using the conclusions of the fault-injection
//! study (EXPERIMENTS.md): a dead *input channel* corrupts every output
//! the PLCU produces, so the chip must be drained; a dead switching ring
//! or a stuck MZM confines its damage to one output-column residue
//! class, so retiring the affected PLCG (one group's worth of capacity)
//! suffices.

use albireo_core::analog::{Fault, FaultSet};

/// What a fault event does to the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The chip stops accepting work (in-flight batch completes).
    ChipOffline {
        /// Fleet chip index.
        chip: usize,
    },
    /// A previously offline chip returns to service (fully healed: all
    /// PLCGs restored).
    ChipOnline {
        /// Fleet chip index.
        chip: usize,
    },
    /// `count` additional PLCGs of the chip are retired. If every PLCG is
    /// gone the chip behaves as offline.
    PlcgOffline {
        /// Fleet chip index.
        chip: usize,
        /// PLCGs newly retired.
        count: usize,
    },
}

impl FaultKind {
    /// Classifies an analog fault set on `chip` into the service-level
    /// action the serving layer takes (see module docs). Returns `None`
    /// for an empty (healthy) set.
    pub fn from_analog(chip: usize, faults: &FaultSet) -> Option<FaultKind> {
        if faults.is_empty() {
            return None;
        }
        if faults
            .as_slice()
            .iter()
            .any(|f| matches!(f, Fault::DeadChannel { .. }))
        {
            Some(FaultKind::ChipOffline { chip })
        } else {
            // DeadRing / StuckMzm: damage is confined to one PLCG's
            // output columns — retire that one group.
            Some(FaultKind::PlcgOffline { chip, count: 1 })
        }
    }

    /// The fleet chip index this event targets.
    pub fn chip(&self) -> usize {
        match *self {
            FaultKind::ChipOffline { chip }
            | FaultKind::ChipOnline { chip }
            | FaultKind::PlcgOffline { chip, .. } => chip,
        }
    }
}

/// A fault event at an instant on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the event fires, s.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A timed fault scenario: the events applied during one simulation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultScenario {
    events: Vec<FaultEvent>,
}

impl FaultScenario {
    /// The healthy scenario (no faults).
    pub fn none() -> FaultScenario {
        FaultScenario::default()
    }

    /// Adds an event (builder style).
    pub fn with(mut self, at_s: f64, kind: FaultKind) -> FaultScenario {
        assert!(
            at_s >= 0.0 && at_s.is_finite(),
            "fault time must be finite and non-negative"
        );
        self.events.push(FaultEvent { at_s, kind });
        self
    }

    /// Adds the service-level consequence of an analog fault set appearing
    /// on `chip` at `at_s` (no-op for an empty set).
    pub fn with_analog(self, at_s: f64, chip: usize, faults: &FaultSet) -> FaultScenario {
        match FaultKind::from_analog(chip, faults) {
            Some(kind) => self.with(at_s, kind),
            None => self,
        }
    }

    /// The events sorted by time (stable: same-time events keep insertion
    /// order).
    pub fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut events = self.events.clone();
        events.sort_by(|a, b| a.at_s.partial_cmp(&b.at_s).expect("fault times are finite"));
        events
    }

    /// Whether the scenario is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analog_classification_matches_fault_study() {
        let mut dead_channel = FaultSet::new();
        dead_channel.push(Fault::DeadChannel { column: 2 });
        assert_eq!(
            FaultKind::from_analog(1, &dead_channel),
            Some(FaultKind::ChipOffline { chip: 1 })
        );
        let mut dead_ring = FaultSet::new();
        dead_ring.push(Fault::DeadRing {
            row: 0,
            col: 1,
            output: 2,
        });
        assert_eq!(
            FaultKind::from_analog(0, &dead_ring),
            Some(FaultKind::PlcgOffline { chip: 0, count: 1 })
        );
        let mut stuck = FaultSet::new();
        stuck.push(Fault::StuckMzm {
            row: 0,
            col: 0,
            weight: 0.5,
        });
        assert_eq!(
            FaultKind::from_analog(2, &stuck),
            Some(FaultKind::PlcgOffline { chip: 2, count: 1 })
        );
        assert_eq!(FaultKind::from_analog(0, &FaultSet::new()), None);
    }

    #[test]
    fn scenario_sorts_by_time() {
        let s = FaultScenario::none()
            .with(2.0, FaultKind::ChipOnline { chip: 0 })
            .with(1.0, FaultKind::ChipOffline { chip: 0 });
        let events = s.sorted_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, FaultKind::ChipOffline { chip: 0 });
        assert!(!s.is_empty());
        assert!(FaultScenario::none().is_empty());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_fault_time_rejected() {
        let _ = FaultScenario::none().with(-1.0, FaultKind::ChipOffline { chip: 0 });
    }
}

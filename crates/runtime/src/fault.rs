//! The fault layer: timed availability events applied to the fleet
//! mid-run, for graceful-degradation studies.
//!
//! Two granularities are modelled, mirroring the analog fault-injection
//! extension (`albireo_core::analog::Fault`):
//!
//! * **chip-level** — a chip goes offline (and may later return): it
//!   finishes its in-flight batch but accepts no new work;
//! * **PLCG-level** — `count` of a chip's PLCGs are retired: the chip
//!   keeps serving from a `ChipConfig` with fewer groups, so service
//!   times degrade per the dataflow model (`⌈Wm/Ng⌉` grows).
//!
//! [`FaultKind::from_analog`] classifies an analog [`FaultSet`] into a
//! service-level action using the conclusions of the fault-injection
//! study (EXPERIMENTS.md): a dead *input channel* corrupts every output
//! the PLCU produces, so the chip must be drained; a dead switching ring
//! or a stuck MZM confines its damage to one output-column residue
//! class, so retiring the affected PLCG (one group's worth of capacity)
//! suffices.
//!
//! On top of independent events, [`FaultSpec`] describes **correlated**
//! scenarios in a fleet-size-generic grammar — rack-scoped failure
//! groups (`rack:A-B@T`), thermal-drift epochs that degrade a chip range
//! together and recalibrate at the epoch end
//! (`thermal:A-B@T1-T2:N`, via [`FaultKind::PlcgRestore`]), and a
//! repair-crew model (`crews:K:MEAN_S:SEED`) with bounded concurrent
//! repairs and a deterministic repair-time RNG stream — compiled per
//! fleet into a plain [`FaultScenario`]. DESIGN.md §13 documents the
//! model.

use albireo_core::analog::{Fault, FaultSet};
use albireo_parallel::{split_seed, stream_id};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Stream-id pass tag for repair-crew duration draws (workload streams
/// use `0x5E1..0x5E3`).
const REPAIR_PASS: u64 = 0x5E4;

/// What a fault event does to the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The chip stops accepting work (in-flight batch completes).
    ChipOffline {
        /// Fleet chip index.
        chip: usize,
    },
    /// A previously offline chip returns to service (fully healed: all
    /// PLCGs restored).
    ChipOnline {
        /// Fleet chip index.
        chip: usize,
    },
    /// `count` additional PLCGs of the chip are retired. If every PLCG is
    /// gone the chip behaves as offline.
    PlcgOffline {
        /// Fleet chip index.
        chip: usize,
        /// PLCGs newly retired.
        count: usize,
    },
    /// `count` previously retired PLCGs of the chip return to service
    /// (the end of a thermal-drift epoch: recalibration recovers the
    /// drifted groups without a full chip drain).
    PlcgRestore {
        /// Fleet chip index.
        chip: usize,
        /// PLCGs restored (clamped to the number currently down).
        count: usize,
    },
}

impl FaultKind {
    /// Classifies an analog fault set on `chip` into the service-level
    /// action the serving layer takes (see module docs). Returns `None`
    /// for an empty (healthy) set.
    pub fn from_analog(chip: usize, faults: &FaultSet) -> Option<FaultKind> {
        if faults.is_empty() {
            return None;
        }
        if faults
            .as_slice()
            .iter()
            .any(|f| matches!(f, Fault::DeadChannel { .. }))
        {
            Some(FaultKind::ChipOffline { chip })
        } else {
            // DeadRing / StuckMzm: damage is confined to one PLCG's
            // output columns — retire that one group.
            Some(FaultKind::PlcgOffline { chip, count: 1 })
        }
    }

    /// The fleet chip index this event targets.
    pub fn chip(&self) -> usize {
        match *self {
            FaultKind::ChipOffline { chip }
            | FaultKind::ChipOnline { chip }
            | FaultKind::PlcgOffline { chip, .. }
            | FaultKind::PlcgRestore { chip, .. } => chip,
        }
    }

    /// Same-instant ordering rank: capacity-removing events apply before
    /// capacity-restoring ones, so a chip that fails and is repaired at
    /// the same instant ends the instant online.
    fn rank(&self) -> u8 {
        match self {
            FaultKind::ChipOffline { .. } => 0,
            FaultKind::PlcgOffline { .. } => 1,
            FaultKind::PlcgRestore { .. } => 2,
            FaultKind::ChipOnline { .. } => 3,
        }
    }

    /// PLCG count for the total order (0 for whole-chip events).
    fn count(&self) -> usize {
        match *self {
            FaultKind::PlcgOffline { count, .. } | FaultKind::PlcgRestore { count, .. } => count,
            _ => 0,
        }
    }
}

/// A fault event at an instant on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the event fires, s.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A timed fault scenario: the events applied during one simulation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultScenario {
    events: Vec<FaultEvent>,
}

impl FaultScenario {
    /// The healthy scenario (no faults).
    pub fn none() -> FaultScenario {
        FaultScenario::default()
    }

    /// Adds an event (builder style).
    pub fn with(mut self, at_s: f64, kind: FaultKind) -> FaultScenario {
        assert!(
            at_s >= 0.0 && at_s.is_finite(),
            "fault time must be finite and non-negative"
        );
        self.events.push(FaultEvent { at_s, kind });
        self
    }

    /// Adds the service-level consequence of an analog fault set appearing
    /// on `chip` at `at_s` (no-op for an empty set).
    pub fn with_analog(self, at_s: f64, chip: usize, faults: &FaultSet) -> FaultScenario {
        match FaultKind::from_analog(chip, faults) {
            Some(kind) => self.with(at_s, kind),
            None => self,
        }
    }

    /// The events in the scenario's **total** order: by time, then kind
    /// rank (offline before restore before online at the same instant),
    /// then chip, then PLCG count. The order is independent of insertion
    /// order, so any permutation of the same event multiset drives the
    /// simulation identically — scenario construction order can never
    /// leak into a run digest.
    pub fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut events = self.events.clone();
        events.sort_by_key(|e| {
            (
                e.at_s.to_bits(),
                e.kind.rank(),
                e.kind.chip(),
                e.kind.count(),
            )
        });
        events
    }

    /// The events in insertion order (unsorted).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Combines two scenarios into one (the union of their events).
    pub fn merged(mut self, other: FaultScenario) -> FaultScenario {
        self.events.extend(other.events);
        self
    }

    /// Whether the scenario is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

/// One clause of a correlated-fault specification ([`FaultSpec`]).
#[derive(Debug, Clone, PartialEq)]
enum FaultClause {
    /// `fail:CHIP@T` — chip goes offline at `T`.
    Fail { chip: usize, at_s: f64 },
    /// `recover:CHIP@T` — chip returns (fully healed) at `T`.
    Recover { chip: usize, at_s: f64 },
    /// `degrade:CHIP@T:N` — `N` of the chip's PLCGs retire at `T`.
    Degrade {
        chip: usize,
        at_s: f64,
        count: usize,
    },
    /// `rack:A-B@T` — chips `A..=B` all go offline at `T` (rack loss).
    Rack { from: usize, to: usize, at_s: f64 },
    /// `thermal:A-B@T1-T2:N` — a thermal-drift epoch: chips `A..=B` each
    /// lose `N` PLCGs at `T1` and regain them at `T2` (recalibration).
    Thermal {
        from: usize,
        to: usize,
        start_s: f64,
        end_s: f64,
        count: usize,
    },
    /// `crews:K:MEAN_S:SEED` — `K` repair crews with exponential repair
    /// times (mean `MEAN_S` seconds, deterministic RNG stream from
    /// `SEED`) bring every failed chip back online.
    Crews {
        crews: usize,
        mean_s: f64,
        seed: u64,
    },
}

/// A correlated-fault scenario specification: comma-joined clauses that
/// [`FaultSpec::compile`] expands against a concrete fleet size into a
/// plain [`FaultScenario`].
///
/// Unlike [`FaultScenario`] — whose events name absolute chip indices of
/// one fleet — a spec is fleet-size-generic: the planner attaches one
/// spec to every candidate and compiles it per fleet, with out-of-range
/// chips skipped (a 2-chip candidate under `rack:0-7@0.01` simply loses
/// both chips). Compilation is a pure function of `(spec, fleet_size)`:
/// the repair-crew model draws from its own seeded stream, so the
/// scenario — and every run under it — is deterministic.
///
/// Grammar (`parse`/`Display` round-trip):
///
/// ```text
/// fail:CHIP@T             chip offline at T seconds
/// recover:CHIP@T          chip back online at T
/// degrade:CHIP@T:N        N PLCGs of the chip retire at T
/// rack:A-B@T              chips A..=B offline at T (rack-scoped loss)
/// thermal:A-B@T1-T2:N     chips A..=B each lose N PLCGs over [T1, T2)
/// crews:K:MEAN_S:SEED     K crews repair failed chips, exp(MEAN_S) each
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    clauses: Vec<FaultClause>,
}

impl FaultSpec {
    /// The empty spec (compiles to [`FaultScenario::none`]).
    pub fn none() -> FaultSpec {
        FaultSpec::default()
    }

    /// Whether the spec has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Parses a comma-joined clause list (see the type docs for the
    /// grammar). An empty string is the empty spec.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut clauses = Vec::new();
        for raw in s.split(',') {
            let clause = raw.trim();
            if clause.is_empty() {
                continue;
            }
            clauses.push(parse_clause(clause)?);
        }
        if clauses
            .iter()
            .filter(|c| matches!(c, FaultClause::Crews { .. }))
            .count()
            > 1
        {
            return Err("at most one crews: clause per fault spec".to_string());
        }
        Ok(FaultSpec { clauses })
    }

    /// Expands the spec against a concrete fleet of `fleet_size` chips.
    ///
    /// Clauses naming chips `>= fleet_size` contribute nothing (ranges
    /// are clipped). If a `crews:` clause is present, every compiled
    /// [`FaultKind::ChipOffline`] event is assigned — in the scenario's
    /// total event order — to the crew free earliest (ties to the lowest
    /// crew index); the repair completes an `exp(mean)` interval after
    /// the crew starts, and the chip returns via
    /// [`FaultKind::ChipOnline`]. Repair durations come from one
    /// `StdRng` seeded via the workspace split-seed contract, so the
    /// compiled scenario is a pure function of `(spec, fleet_size)`.
    pub fn compile(&self, fleet_size: usize) -> FaultScenario {
        let mut scenario = FaultScenario::none();
        let clip = |from: usize, to: usize| from..to.saturating_add(1).min(fleet_size);
        for clause in &self.clauses {
            match *clause {
                FaultClause::Fail { chip, at_s } if chip < fleet_size => {
                    scenario = scenario.with(at_s, FaultKind::ChipOffline { chip });
                }
                FaultClause::Recover { chip, at_s } if chip < fleet_size => {
                    scenario = scenario.with(at_s, FaultKind::ChipOnline { chip });
                }
                FaultClause::Degrade { chip, at_s, count } if chip < fleet_size => {
                    scenario = scenario.with(at_s, FaultKind::PlcgOffline { chip, count });
                }
                FaultClause::Rack { from, to, at_s } => {
                    for chip in clip(from, to) {
                        scenario = scenario.with(at_s, FaultKind::ChipOffline { chip });
                    }
                }
                FaultClause::Thermal {
                    from,
                    to,
                    start_s,
                    end_s,
                    count,
                } => {
                    for chip in clip(from, to) {
                        scenario = scenario
                            .with(start_s, FaultKind::PlcgOffline { chip, count })
                            .with(end_s, FaultKind::PlcgRestore { chip, count });
                    }
                }
                _ => {}
            }
        }
        if let Some(&FaultClause::Crews {
            crews,
            mean_s,
            seed,
        }) = self
            .clauses
            .iter()
            .find(|c| matches!(c, FaultClause::Crews { .. }))
        {
            scenario = dispatch_crews(scenario, crews, mean_s, seed);
        }
        scenario
    }
}

/// Assigns every chip failure in `scenario` to one of `crews` repair
/// crews and appends the resulting [`FaultKind::ChipOnline`] events.
fn dispatch_crews(scenario: FaultScenario, crews: usize, mean_s: f64, seed: u64) -> FaultScenario {
    let mut rng = StdRng::seed_from_u64(split_seed(seed, stream_id(REPAIR_PASS, 0, 0)));
    // `free_at[i]` = when crew `i` can start its next repair.
    let mut free_at = vec![0.0f64; crews];
    let mut out = scenario.clone();
    // Walk failures in the scenario's total order so crew assignment —
    // and therefore every RNG draw — is permutation-invariant.
    for event in scenario.sorted_events() {
        let FaultKind::ChipOffline { chip } = event.kind else {
            continue;
        };
        let crew = (0..crews)
            .min_by(|&a, &b| free_at[a].total_cmp(&free_at[b]))
            .expect("crews >= 1");
        let start_s = free_at[crew].max(event.at_s);
        // Inverse-CDF exponential repair time; 1 - u ∈ (0, 1].
        let u: f64 = rng.random();
        let done_s = start_s + -(1.0 - u).ln() * mean_s;
        free_at[crew] = done_s;
        out = out.with(done_s, FaultKind::ChipOnline { chip });
    }
    out
}

fn parse_clause(clause: &str) -> Result<FaultClause, String> {
    let err = |msg: &str| format!("fault clause `{clause}`: {msg}");
    let (kind, rest) = clause
        .split_once(':')
        .ok_or_else(|| err("expected kind:args"))?;
    let parse_usize =
        |s: &str, what: &str| s.parse::<usize>().map_err(|_| err(&format!("bad {what}")));
    let parse_time = |s: &str, what: &str| {
        let t = s.parse::<f64>().map_err(|_| err(&format!("bad {what}")))?;
        if t.is_finite() && t >= 0.0 {
            Ok(t)
        } else {
            Err(err(&format!("{what} must be finite and non-negative")))
        }
    };
    let parse_range = |s: &str| -> Result<(usize, usize), String> {
        let (a, b) = s.split_once('-').ok_or_else(|| err("expected A-B range"))?;
        let (from, to) = (parse_usize(a, "range start")?, parse_usize(b, "range end")?);
        if from > to {
            return Err(err("range start exceeds range end"));
        }
        Ok((from, to))
    };
    match kind {
        "fail" | "recover" => {
            let (chip, at) = rest.split_once('@').ok_or_else(|| err("expected CHIP@T"))?;
            let chip = parse_usize(chip, "chip index")?;
            let at_s = parse_time(at, "time")?;
            Ok(if kind == "fail" {
                FaultClause::Fail { chip, at_s }
            } else {
                FaultClause::Recover { chip, at_s }
            })
        }
        "degrade" => {
            let (chip, rest) = rest
                .split_once('@')
                .ok_or_else(|| err("expected CHIP@T:N"))?;
            let (at, n) = rest.split_once(':').ok_or_else(|| err("expected T:N"))?;
            let count = parse_usize(n, "PLCG count")?;
            if count == 0 {
                return Err(err("PLCG count must be at least 1"));
            }
            Ok(FaultClause::Degrade {
                chip: parse_usize(chip, "chip index")?,
                at_s: parse_time(at, "time")?,
                count,
            })
        }
        "rack" => {
            let (range, at) = rest.split_once('@').ok_or_else(|| err("expected A-B@T"))?;
            let (from, to) = parse_range(range)?;
            Ok(FaultClause::Rack {
                from,
                to,
                at_s: parse_time(at, "time")?,
            })
        }
        "thermal" => {
            let (range, rest) = rest
                .split_once('@')
                .ok_or_else(|| err("expected A-B@T1-T2:N"))?;
            let (from, to) = parse_range(range)?;
            let (window, n) = rest
                .split_once(':')
                .ok_or_else(|| err("expected T1-T2:N"))?;
            let (t1, t2) = window
                .split_once('-')
                .ok_or_else(|| err("expected T1-T2 window"))?;
            let (start_s, end_s) = (parse_time(t1, "epoch start")?, parse_time(t2, "epoch end")?);
            if start_s >= end_s {
                return Err(err("epoch start must precede epoch end"));
            }
            let count = parse_usize(n, "PLCG count")?;
            if count == 0 {
                return Err(err("PLCG count must be at least 1"));
            }
            Ok(FaultClause::Thermal {
                from,
                to,
                start_s,
                end_s,
                count,
            })
        }
        "crews" => {
            let parts: Vec<&str> = rest.split(':').collect();
            if parts.len() != 3 {
                return Err(err("expected K:MEAN_S:SEED"));
            }
            let crews = parse_usize(parts[0], "crew count")?;
            if crews == 0 {
                return Err(err("crew count must be at least 1"));
            }
            let mean_s = parse_time(parts[1], "mean repair time")?;
            if mean_s <= 0.0 {
                return Err(err("mean repair time must be positive"));
            }
            let seed = parts[2].parse::<u64>().map_err(|_| err("bad crew seed"))?;
            Ok(FaultClause::Crews {
                crews,
                mean_s,
                seed,
            })
        }
        _ => Err(err("unknown clause kind")),
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, clause) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match *clause {
                FaultClause::Fail { chip, at_s } => write!(f, "fail:{chip}@{at_s}")?,
                FaultClause::Recover { chip, at_s } => write!(f, "recover:{chip}@{at_s}")?,
                FaultClause::Degrade { chip, at_s, count } => {
                    write!(f, "degrade:{chip}@{at_s}:{count}")?
                }
                FaultClause::Rack { from, to, at_s } => write!(f, "rack:{from}-{to}@{at_s}")?,
                FaultClause::Thermal {
                    from,
                    to,
                    start_s,
                    end_s,
                    count,
                } => write!(f, "thermal:{from}-{to}@{start_s}-{end_s}:{count}")?,
                FaultClause::Crews {
                    crews,
                    mean_s,
                    seed,
                } => write!(f, "crews:{crews}:{mean_s}:{seed}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analog_classification_matches_fault_study() {
        let mut dead_channel = FaultSet::new();
        dead_channel.push(Fault::DeadChannel { column: 2 });
        assert_eq!(
            FaultKind::from_analog(1, &dead_channel),
            Some(FaultKind::ChipOffline { chip: 1 })
        );
        let mut dead_ring = FaultSet::new();
        dead_ring.push(Fault::DeadRing {
            row: 0,
            col: 1,
            output: 2,
        });
        assert_eq!(
            FaultKind::from_analog(0, &dead_ring),
            Some(FaultKind::PlcgOffline { chip: 0, count: 1 })
        );
        let mut stuck = FaultSet::new();
        stuck.push(Fault::StuckMzm {
            row: 0,
            col: 0,
            weight: 0.5,
        });
        assert_eq!(
            FaultKind::from_analog(2, &stuck),
            Some(FaultKind::PlcgOffline { chip: 2, count: 1 })
        );
        assert_eq!(FaultKind::from_analog(0, &FaultSet::new()), None);
    }

    #[test]
    fn scenario_sorts_by_time() {
        let s = FaultScenario::none()
            .with(2.0, FaultKind::ChipOnline { chip: 0 })
            .with(1.0, FaultKind::ChipOffline { chip: 0 });
        let events = s.sorted_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, FaultKind::ChipOffline { chip: 0 });
        assert!(!s.is_empty());
        assert!(FaultScenario::none().is_empty());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_fault_time_rejected() {
        let _ = FaultScenario::none().with(-1.0, FaultKind::ChipOffline { chip: 0 });
    }

    #[test]
    fn from_analog_empty_set_is_healthy() {
        assert_eq!(FaultKind::from_analog(0, &FaultSet::new()), None);
        assert_eq!(FaultKind::from_analog(usize::MAX, &FaultSet::new()), None);
        // with_analog on an empty set adds nothing.
        let s = FaultScenario::none().with_analog(1.0, 3, &FaultSet::new());
        assert!(s.is_empty());
    }

    #[test]
    fn equal_time_events_sort_by_rank_then_chip_then_count() {
        let t = 0.5;
        let s = FaultScenario::none()
            .with(t, FaultKind::ChipOnline { chip: 0 })
            .with(t, FaultKind::PlcgRestore { chip: 1, count: 2 })
            .with(t, FaultKind::PlcgOffline { chip: 1, count: 1 })
            .with(t, FaultKind::ChipOffline { chip: 2 })
            .with(t, FaultKind::ChipOffline { chip: 0 });
        let kinds: Vec<FaultKind> = s.sorted_events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FaultKind::ChipOffline { chip: 0 },
                FaultKind::ChipOffline { chip: 2 },
                FaultKind::PlcgOffline { chip: 1, count: 1 },
                FaultKind::PlcgRestore { chip: 1, count: 2 },
                FaultKind::ChipOnline { chip: 0 },
            ]
        );
    }

    #[test]
    fn sorted_events_are_permutation_invariant() {
        let events = [
            (0.5, FaultKind::ChipOffline { chip: 1 }),
            (0.5, FaultKind::ChipOnline { chip: 1 }),
            (0.1, FaultKind::PlcgOffline { chip: 0, count: 3 }),
            (0.5, FaultKind::PlcgOffline { chip: 0, count: 1 }),
        ];
        let forward = events
            .iter()
            .fold(FaultScenario::none(), |s, &(t, k)| s.with(t, k));
        let backward = events
            .iter()
            .rev()
            .fold(FaultScenario::none(), |s, &(t, k)| s.with(t, k));
        assert_eq!(forward.sorted_events(), backward.sorted_events());
    }

    #[test]
    fn fault_spec_round_trips_through_display() {
        let text = "fail:2@0.01,recover:2@0.05,degrade:0@0.02:3,rack:4-7@0.03,\
                    thermal:0-3@0.01-0.04:2,crews:2:0.5:99";
        let spec = FaultSpec::parse(text).unwrap();
        assert_eq!(spec.to_string(), text);
        assert_eq!(FaultSpec::parse(&spec.to_string()).unwrap(), spec);
        assert!(FaultSpec::parse("").unwrap().is_empty());
        assert_eq!(FaultSpec::none().to_string(), "");
    }

    #[test]
    fn fault_spec_rejects_malformed_clauses() {
        for bad in [
            "explode:1@0.1",
            "fail:1",
            "fail:x@0.1",
            "fail:1@-2",
            "fail:1@inf",
            "degrade:1@0.1:0",
            "rack:5-2@0.1",
            "thermal:0-1@0.5-0.2:1",
            "crews:0:0.5:1",
            "crews:2:0:1",
            "crews:2:0.5",
            "crews:1:0.5:7,crews:2:0.5:8",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn compile_clips_out_of_range_chips() {
        let spec = FaultSpec::parse("rack:0-7@0.01,fail:9@0.02,degrade:1@0.03:2").unwrap();
        let scenario = spec.compile(3);
        // Rack clipped to chips 0..=2, fail:9 dropped, degrade kept.
        assert_eq!(scenario.len(), 4);
        assert!(
            scenario.events().iter().all(|e| e.kind.chip() < 3),
            "{:?}",
            scenario.events()
        );
        assert!(spec.compile(0).is_empty());
    }

    #[test]
    fn thermal_epoch_degrades_then_restores_each_chip() {
        let scenario = FaultSpec::parse("thermal:0-1@0.1-0.4:2")
            .unwrap()
            .compile(4);
        let events = scenario.sorted_events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].kind, FaultKind::PlcgOffline { chip: 0, count: 2 });
        assert_eq!(events[0].at_s, 0.1);
        assert_eq!(events[3].kind, FaultKind::PlcgRestore { chip: 1, count: 2 });
        assert_eq!(events[3].at_s, 0.4);
    }

    #[test]
    fn crews_repair_every_failure_deterministically() {
        let spec = FaultSpec::parse("rack:0-2@0.01,crews:1:0.5:42").unwrap();
        let a = spec.compile(4);
        let b = spec.compile(4);
        assert_eq!(a, b, "crew dispatch must be deterministic");
        let repairs: Vec<&FaultEvent> = a
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::ChipOnline { .. }))
            .collect();
        assert_eq!(repairs.len(), 3, "every failed chip gets repaired");
        // One crew: repairs are strictly sequential (no overlap), so the
        // completion times are distinct and increasing in dispatch order.
        let mut times: Vec<f64> = repairs.iter().map(|e| e.at_s).collect();
        let sorted = {
            let mut t = times.clone();
            t.sort_by(f64::total_cmp);
            t
        };
        assert_eq!(times, sorted);
        times.dedup();
        assert_eq!(times.len(), 3);
        assert!(times.iter().all(|&t| t > 0.01));
        // More crews finish the fleet repair no later.
        let fast = FaultSpec::parse("rack:0-2@0.01,crews:3:0.5:42")
            .unwrap()
            .compile(4);
        let last = |s: &FaultScenario| {
            s.events()
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::ChipOnline { .. }))
                .map(|e| e.at_s)
                .fold(0.0, f64::max)
        };
        assert!(last(&fast) <= last(&a));
    }
}

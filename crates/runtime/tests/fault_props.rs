//! Property tests pinning the fault layer's permutation invariance: a
//! [`FaultScenario`] is a *set* of timed events, so the order clauses
//! were written in — by a user, the `FaultSpec` compiler, or the
//! repair-crew dispatcher — must never leak into the sorted event order
//! or, transitively, into a run digest. This is what makes fault specs
//! safely composable (`FaultScenario::merged`, planner-attached specs)
//! without re-auditing determinism at every call site.

use albireo_runtime::{simulate, FaultKind, FaultScenario, FleetConfig, ServeConfig};
use proptest::prelude::*;

/// Arbitrary fault events over a 2-chip fleet: times draw from a small
/// pool so same-instant ties are common, and every `FaultKind` variant
/// appears.
fn events() -> impl Strategy<Value = Vec<(f64, FaultKind)>> {
    prop::collection::vec(
        (
            (0u32..8).prop_map(|t| t as f64 * 0.01),
            (0usize..2, 0u8..4, 1usize..4).prop_map(|(chip, kind, count)| match kind {
                0 => FaultKind::ChipOffline { chip },
                1 => FaultKind::ChipOnline { chip },
                2 => FaultKind::PlcgOffline { chip, count },
                _ => FaultKind::PlcgRestore { chip, count },
            }),
        ),
        0..12,
    )
}

/// A permutation of `0..n` derived from a shuffle seed.
fn permute<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut out: Vec<T> = items.to_vec();
    // Deterministic Fisher–Yates driven by a splitmix-style sequence.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for i in (1..out.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.swap(i, (state % (i as u64 + 1)) as usize);
    }
    out
}

proptest! {
    /// Any permutation of the same event multiset sorts identically.
    #[test]
    fn sorted_events_ignore_insertion_order(evs in events(), seed in 0u64..u64::MAX) {
        let forward = evs
            .iter()
            .fold(FaultScenario::none(), |s, &(t, k)| s.with(t, k));
        let shuffled = permute(&evs, seed)
            .iter()
            .fold(FaultScenario::none(), |s, &(t, k)| s.with(t, k));
        prop_assert_eq!(forward.sorted_events(), shuffled.sorted_events());
    }

    /// Any permutation of the same scenario drives the simulation to a
    /// byte-identical report (same digest, same JSON).
    #[test]
    fn run_digest_ignores_scenario_insertion_order(evs in events(), seed in 0u64..u64::MAX) {
        let fleet = FleetConfig::paper_pair();
        let mut cfg = ServeConfig::poisson(3000.0, 120, 42, 0);
        cfg.faults = evs
            .iter()
            .fold(FaultScenario::none(), |s, &(t, k)| s.with(t, k));
        let a = simulate(&fleet, &cfg);
        cfg.faults = permute(&evs, seed)
            .iter()
            .fold(FaultScenario::none(), |s, &(t, k)| s.with(t, k));
        let b = simulate(&fleet, &cfg);
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(a.to_json(), b.to_json());
    }
}

//! Property tests pinning the fleet-spec grammar for the operating-mode
//! chip kinds: every `winograd`/`gemm` alias parses to a chip whose name
//! and geometry follow the `{kind}_{estimate}` convention, arbitrary
//! heterogeneous specs round-trip through `fleet_spec()`-style
//! reconstruction, and support-aware dispatch stays a clean boolean —
//! a gemm-only fleet reports `supports == false` for spatial CNNs
//! instead of panicking inside the engine.

use albireo_nn::zoo;
use albireo_runtime::FleetConfig;
use proptest::prelude::*;

/// One fleet entry: (kind index, spelled alias of that kind, estimate
/// tag). The alias list covers every accepted spelling of each kind.
fn entry() -> impl Strategy<Value = (usize, String, char)> {
    let spellings: Vec<(usize, &str)> = vec![
        (0, "winograd"),
        (0, "winograd_9"),
        (0, "winograd9"),
        (1, "winograd_27"),
        (1, "winograd27"),
        (2, "gemm"),
        (2, "gemm_9"),
        (2, "gemm9"),
        (3, "gemm_27"),
        (3, "gemm27"),
        (4, "albireo_9"),
        (5, "albireo_27"),
    ];
    (
        0..spellings.len(),
        prop_oneof![Just('C'), Just('M'), Just('A')],
    )
        .prop_map(move |(i, est)| {
            let (kind, spelled) = spellings[i];
            (kind, spelled.to_string(), est)
        })
}

fn fleet() -> impl Strategy<Value = Vec<(usize, String, char)>> {
    prop::collection::vec(entry(), 1..5)
}

/// Expected compute-group count for a kind index: winograd/gemm reuse
/// the Albireo-9/-27 geometry they are built on.
fn expected_groups(kind: usize) -> usize {
    match kind {
        0 | 2 | 4 => 9,
        _ => 27,
    }
}

proptest! {
    /// Every accepted spelling of the operating-mode chip kinds parses,
    /// names the chip `{spelling}_{estimate}`, and carries the right
    /// PLCG geometry through to the `Accelerator`.
    #[test]
    fn operating_mode_aliases_round_trip(entries in fleet()) {
        let spec = entries
            .iter()
            .map(|(_, spelled, est)| format!("{spelled}:{est}"))
            .collect::<Vec<_>>()
            .join(",");
        let parsed = FleetConfig::parse(&spec, zoo::serving_models()).unwrap();
        prop_assert_eq!(parsed.chips.len(), entries.len());
        for (chip, (kind, spelled, est)) in parsed.chips.iter().zip(&entries) {
            prop_assert_eq!(chip.name.clone(), format!("{spelled}_{est}"));
            prop_assert_eq!(chip.accel.compute_groups(), expected_groups(*kind));
        }
        // The parsed fleet's own chip names re-parse under aliases to an
        // equivalent fleet (alias=kind:est round-trip).
        let aliased = entries
            .iter()
            .enumerate()
            .map(|(i, (_, spelled, est))| format!("m{i}={spelled}:{est}"))
            .collect::<Vec<_>>()
            .join(",");
        let reparsed = FleetConfig::parse(&aliased, zoo::serving_models()).unwrap();
        for (i, chip) in reparsed.chips.iter().enumerate() {
            prop_assert_eq!(chip.name.clone(), format!("m{i}"));
        }
    }

    /// Support-aware dispatch is a clean, total predicate: a fleet with
    /// any direct or winograd chip supports every serving-zoo model,
    /// while a gemm-only fleet supports exactly the dense networks —
    /// never a panic either way.
    #[test]
    fn gemm_only_fleets_reject_spatial_cnns_cleanly(entries in fleet()) {
        let spec = entries
            .iter()
            .map(|(_, spelled, est)| format!("{spelled}:{est}"))
            .collect::<Vec<_>>()
            .join(",");
        let parsed = FleetConfig::parse(&spec, zoo::serving_models()).unwrap();
        let gemm_only = entries.iter().all(|&(kind, _, _)| kind == 2 || kind == 3);
        for model in &parsed.models {
            // Indices 0–3 are the paper's spatial CNNs; the dense
            // extension workloads are all-pointwise/FC by construction.
            let dense = matches!(model.name(), "MLP-Mixer" | "Transformer-Enc");
            if gemm_only && !dense {
                prop_assert!(!parsed.supports(model), "{} should be unsupported", model.name());
            } else {
                prop_assert!(parsed.supports(model), "{} should be supported", model.name());
            }
        }
    }
}

//! Bounded-memory regression tests for the streamed serving engine.
//!
//! The scale contract (DESIGN.md §11): a run's resident state is
//! O(fleet + in-flight work), never O(requests). The observable proxies
//! are exact and deterministic — `peak_event_queue` is the event queue's
//! high-water mark, `sketch_buckets` the quantile sketch's occupied
//! bucket count (bounded by `MAX_BUCKETS` for any stream), and
//! `record_cap: 0` keeps the per-request record sample empty. The
//! default test proves the bounds at 10⁵ requests; the `#[ignore]`d one
//! is the full 10⁶-request smoke CI runs in release mode.

use albireo_runtime::{simulate, AdmissionControl, ClassSpec, FleetConfig, ServeConfig};

/// Queue-depth ceiling: a handful of completions/timers per chip plus
/// scheduled faults — far below any O(requests) regression.
const PEAK_EVENT_CAP: usize = 64;

fn scale_cfg(requests: usize) -> ServeConfig {
    let mut cfg = ServeConfig::poisson(5000.0, requests, 42, 0);
    cfg.admission = AdmissionControl::bounded(64);
    cfg.record_cap = 0;
    cfg
}

fn assert_bounded(report: &albireo_runtime::ServiceReport, requests: usize) {
    assert_eq!(report.offered, requests as u64);
    assert_eq!(report.completed + report.shed, requests as u64);
    assert!(report.completed > 0);
    assert!(
        report.peak_event_queue <= PEAK_EVENT_CAP,
        "peak event queue {} scales with requests",
        report.peak_event_queue
    );
    assert!(
        report.sketch_buckets <= albireo_obs::sketch::MAX_BUCKETS,
        "sketch buckets {} exceed the fixed bucket space",
        report.sketch_buckets
    );
    assert!(
        report.records.is_empty(),
        "record_cap 0 must retain nothing"
    );
    assert!(report.p50_ms > 0.0 && report.p999_ms >= report.p99_ms);
}

#[test]
fn hundred_thousand_requests_run_in_bounded_memory() {
    let fleet = FleetConfig::paper_pair();
    let requests = 100_000;
    let report = simulate(&fleet, &scale_cfg(requests));
    assert_bounded(&report, requests);
    // Determinism holds at scale: a second run is byte-identical.
    let again = simulate(&fleet, &scale_cfg(requests));
    assert_eq!(report, again);
}

#[test]
fn per_class_accounting_stays_bounded_at_scale() {
    let fleet = FleetConfig::paper_pair();
    let requests = 50_000;
    let mut cfg = scale_cfg(requests);
    cfg.workload = cfg.workload.with_classes(vec![
        ClassSpec::with_slo("interactive", 3.0, 5.0),
        ClassSpec::best_effort("batch", 1.0),
    ]);
    let report = simulate(&fleet, &cfg);
    assert_bounded(&report, requests);
    assert_eq!(report.classes.len(), 2);
    let covered: u64 = report.classes.iter().map(|c| c.completed + c.shed).sum();
    assert_eq!(covered, requests as u64, "classes partition all traffic");
    assert!(report.classes[0].slo_attainment.is_some());
}

/// The full million-request smoke (`cargo test --release -- --ignored`).
/// Debug builds take minutes here; release finishes in well under a
/// second, which is what the CI serving-scale job asserts with a
/// timeout.
#[test]
#[ignore = "million-request smoke; run in release builds (CI serving-scale job)"]
fn million_requests_run_in_bounded_memory() {
    let fleet = FleetConfig::paper_pair();
    let requests = 1_000_000;
    let report = simulate(&fleet, &scale_cfg(requests));
    assert_bounded(&report, requests);
}

//! Property tests pinning the hybrid event queue to its reference
//! semantics: pop order must equal the `BinaryHeap<Reverse<_>>` the
//! serving engine used historically, on arbitrary push/pop interleavings
//! — including same-timestamp, same-class ties, which only the insertion
//! sequence number separates. This is the contract that lets the engine
//! swap queue implementations without moving a single event in any run.

use albireo_runtime::{EventKey, EventQueue};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event stream: `(time, class, payload)` triples. Times draw from a
/// small pool so same-timestamp ties are common, not rare; classes span
/// the engine's four; interleave decides when pops happen.
fn stream() -> impl Strategy<Value = Vec<(f64, u8, bool)>> {
    prop::collection::vec(
        (
            prop_oneof![
                4 => (0u32..20).prop_map(|t| t as f64 * 0.125),
                2 => 0.0f64..10.0,
                1 => Just(0.0f64),
            ],
            0u8..4,
            // true = also pop one event after this push
            prop::bool::ANY,
        ),
        0..200,
    )
}

proptest! {
    /// Interleaved pushes and pops pop in exactly the reference
    /// BinaryHeap order at every step.
    #[test]
    fn pop_order_equals_binary_heap_reference(ops in stream()) {
        let mut hybrid: EventQueue<u64> = EventQueue::new();
        let mut reference: BinaryHeap<Reverse<(u64, u8, u64)>> = BinaryHeap::new();
        for (seq, &(t, class, pop_after)) in ops.iter().enumerate() {
            let seq = seq as u64;
            hybrid.push(EventKey::new(t.to_bits(), class, seq), seq);
            reference.push(Reverse((t.to_bits(), class, seq)));
            if pop_after {
                let got = hybrid.pop();
                let want = reference.pop();
                match (got, want) {
                    (Some((k, payload)), Some(Reverse((tb, c, s)))) => {
                        prop_assert_eq!(k.time_bits(), tb);
                        prop_assert_eq!(k.class(), c);
                        prop_assert_eq!(k.seq(), s);
                        prop_assert_eq!(payload, s);
                    }
                    (None, None) => {}
                    (g, w) => prop_assert!(false, "mismatch: {:?} vs {:?}", g, w),
                }
            }
        }
        // Drain the remainder in lockstep.
        while let Some(Reverse((tb, c, s))) = reference.pop() {
            let (k, payload) = hybrid.pop().expect("hybrid drained early");
            prop_assert_eq!((k.time_bits(), k.class(), k.seq()), (tb, c, s));
            prop_assert_eq!(payload, s);
        }
        prop_assert!(hybrid.is_empty());
        prop_assert_eq!(hybrid.peek_key(), None);
    }

    /// `peek_key` always agrees with the next pop, and `len` tracks the
    /// population exactly.
    #[test]
    fn peek_agrees_with_pop(ops in stream()) {
        let mut q: EventQueue<()> = EventQueue::new();
        let mut expected_len = 0usize;
        for (i, &(t, class, pop_after)) in ops.iter().enumerate() {
            q.push(EventKey::new(t.to_bits(), class, i as u64), ());
            expected_len += 1;
            prop_assert_eq!(q.len(), expected_len);
            if pop_after {
                let peeked = q.peek_key();
                let popped = q.pop().map(|(k, _)| k);
                prop_assert_eq!(peeked, popped);
                expected_len -= 1;
                prop_assert_eq!(q.len(), expected_len);
            }
        }
        prop_assert!(q.peak_len() >= q.len());
    }

    /// Keys round-trip their three fields through the u128 packing for
    /// every representable (time, class, seq) triple the engine can emit.
    #[test]
    fn key_packing_round_trips(
        t in 0.0f64..1e12,
        class in 0u8..=255,
        seq in 0u64..(1 << 56),
    ) {
        let k = EventKey::new(t.to_bits(), class, seq);
        prop_assert_eq!(k.time_bits(), t.to_bits());
        prop_assert_eq!(k.time_s(), t);
        prop_assert_eq!(k.class(), class);
        prop_assert_eq!(k.seq(), seq);
    }

    /// Packed-key comparison equals lexicographic comparison of the
    /// unpacked triples — the property the whole total order rests on.
    #[test]
    fn key_order_is_lexicographic(
        a in (0.0f64..100.0, 0u8..4, 0u64..1000),
        b in (0.0f64..100.0, 0u8..4, 0u64..1000),
    ) {
        let ka = EventKey::new(a.0.to_bits(), a.1, a.2);
        let kb = EventKey::new(b.0.to_bits(), b.1, b.2);
        let ta = (a.0.to_bits(), a.1, a.2);
        let tb = (b.0.to_bits(), b.1, b.2);
        prop_assert_eq!(ka.cmp(&kb), ta.cmp(&tb));
    }
}

//! Deterministic parallel execution engine for the Albireo simulator.
//!
//! Every evaluation in the paper — the (chip × estimate × network) sweeps
//! behind Tables 1–4 and the per-kernel analog signal-chain simulation —
//! decomposes into independent work items (output kernels, output rows,
//! sweep points). This crate provides the one primitive the rest of the
//! workspace builds on: a *deterministically chunked* parallel map over
//! `0..n`, plus a seed-splitting function so stochastic work items draw
//! from per-item child generators instead of one shared sequential stream.
//!
//! # Determinism contract
//!
//! Results are **bit-identical at any thread count**, including 1, because:
//!
//! * work item `i` always produces slot `i` of the output — placement is
//!   by index, never by completion order;
//! * chunking is static and contiguous (`ceil(n / threads)` items per
//!   worker), so no work stealing and no scheduler-dependent partitioning;
//! * stochastic items never share a generator: [`split_seed`] derives an
//!   independent child seed from `(base_seed, stream_id)`, and the stream
//!   id is a function of the work item's *coordinates* (kernel index,
//!   output row, sweep point), not of which thread runs it.
//!
//! The API is deliberately rayon-shaped (`map_indexed` ≈
//! `(0..n).into_par_iter().map(...).collect()`), so swapping in rayon
//! later is a local change. A registry-free `std::thread::scope` pool is
//! used because the build environment cannot fetch crates.
//!
//! # Observability
//!
//! When the process-wide [`albireo_obs::global`] handle is enabled, each
//! parallel region records ambient counters — regions entered, items
//! executed, per-worker op counts (`parallel.worker.N.ops`), and merge
//! events where worker chunks rejoin the caller's buffer. The hot path
//! pays exactly one enabled-check branch per region (never per item),
//! and the counts are exact at any thread count because each worker's
//! chunk size is a pure function of `(n, workers)`.
//!
//! When the wall-clock profiler is enabled
//! ([`albireo_obs::profile::set_enabled`]), each parallel region also
//! times its dispatch+join on the caller (`parallel.join`) and each
//! worker band on its own thread (`parallel.chunk`); both are excluded
//! from every determinism digest.

use albireo_obs::profile;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Sentinel meaning "one thread per available core".
const AUTO: usize = 0;

/// Records the ambient counters for one parallel region: `n` items run
/// across `workers` workers with static `chunk`-sized bands, plus one
/// merge event per band rejoining the output. No-op unless the global
/// obs handle is enabled (single branch).
fn record_region(kind: &str, n: usize, workers: usize, chunk: usize) {
    let obs = albireo_obs::global();
    if !obs.is_enabled() {
        return;
    }
    obs.counter("parallel.regions").add(1);
    obs.counter(&format!("parallel.{kind}.regions")).add(1);
    obs.counter("parallel.items").add(n as u64);
    if workers <= 1 {
        obs.counter("parallel.worker.0.ops").add(n as u64);
        return;
    }
    let mut remaining = n;
    let mut w = 0usize;
    while remaining > 0 {
        let band = chunk.min(remaining);
        obs.counter(&format!("parallel.worker.{w}.ops"))
            .add(band as u64);
        obs.counter("parallel.merges").add(1);
        remaining -= band;
        w += 1;
    }
}

/// Process-wide default thread count; [`AUTO`] until overridden.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(AUTO);

/// Parallel execution policy: how many threads a parallel region may use.
///
/// `Copy` so it threads through the simulator's config structs the same
/// way `ChipConfig` does. The zero value means "auto" (all cores).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Requested worker count; 0 = one per available core.
    threads: usize,
}

impl Default for Parallelism {
    /// The process-wide default set via [`Parallelism::set_global`]
    /// (auto, i.e. all cores, unless overridden).
    fn default() -> Parallelism {
        Parallelism::global()
    }
}

impl Parallelism {
    /// Single-threaded execution.
    pub fn serial() -> Parallelism {
        Parallelism { threads: 1 }
    }

    /// One thread per available core.
    pub fn auto() -> Parallelism {
        Parallelism { threads: AUTO }
    }

    /// Exactly `threads` workers; 0 means auto.
    pub fn with_threads(threads: usize) -> Parallelism {
        Parallelism { threads }
    }

    /// The process-wide default used by `Parallelism::default()`.
    pub fn global() -> Parallelism {
        Parallelism {
            threads: GLOBAL_THREADS.load(Ordering::Relaxed),
        }
    }

    /// Sets the process-wide default (e.g. from a `--threads N` CLI flag).
    pub fn set_global(par: Parallelism) {
        GLOBAL_THREADS.store(par.threads, Ordering::Relaxed);
    }

    /// The worker count this policy resolves to on this host.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == AUTO {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Whether this policy is exactly one worker.
    pub fn is_serial(&self) -> bool {
        self.resolved_threads() <= 1
    }

    /// Runs `f(i)` for every `i in 0..n` and collects the results in
    /// index order. Deterministic: identical output for any thread count.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.resolved_threads().min(n.max(1));
        if workers <= 1 || n <= 1 {
            record_region("map", n, 1, n.max(1));
            return (0..n).map(f).collect();
        }
        let mut out: Vec<Option<T>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let chunk = n.div_ceil(workers);
        record_region("map", n, workers, chunk);
        // Caller-side: dispatch + join wait; worker-side: each band is
        // its own wall-clock profile root (concurrent time must not
        // nest under the caller, which already measures the join).
        let _join = profile::scope("parallel.join");
        std::thread::scope(|scope| {
            for (w, slots) in out.chunks_mut(chunk).enumerate() {
                let f = &f;
                scope.spawn(move || {
                    let _chunk = profile::scope("parallel.chunk");
                    let base = w * chunk;
                    for (j, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(f(base + j));
                    }
                });
            }
        });
        out.into_iter()
            .map(|slot| slot.expect("worker filled every slot"))
            .collect()
    }

    /// Splits `data` into `n = data.len() / item_len` equal items and runs
    /// `f(i, item_slice)` for each, in parallel. The caller's buffer is
    /// written in place; item `i` always owns
    /// `data[i * item_len .. (i + 1) * item_len]`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `item_len`.
    pub fn fill_slices<T, F>(&self, data: &mut [T], item_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(item_len > 0, "item_len must be positive");
        assert_eq!(
            data.len() % item_len,
            0,
            "data length {} is not a multiple of item length {}",
            data.len(),
            item_len
        );
        let n = data.len() / item_len;
        let workers = self.resolved_threads().min(n.max(1));
        if workers <= 1 || n <= 1 {
            record_region("fill", n, 1, n.max(1));
            for (i, item) in data.chunks_mut(item_len).enumerate() {
                f(i, item);
            }
            return;
        }
        let chunk = n.div_ceil(workers);
        record_region("fill", n, workers, chunk);
        let _join = profile::scope("parallel.join");
        std::thread::scope(|scope| {
            for (w, band) in data.chunks_mut(chunk * item_len).enumerate() {
                let f = &f;
                scope.spawn(move || {
                    let _chunk = profile::scope("parallel.chunk");
                    let base = w * chunk;
                    for (j, item) in band.chunks_mut(item_len).enumerate() {
                        f(base + j, item);
                    }
                });
            }
        });
    }
}

/// Derives an independent child seed from a base seed and a stream id.
///
/// This is the per-work-item seed-splitting scheme the determinism
/// guarantee rests on: each stochastic work item (analog kernel × output
/// row, property-test case, …) seeds its own generator with
/// `split_seed(base, stream)` where `stream` encodes the item's logical
/// coordinates. Two SplitMix64 output mixes keep child streams decorrelated
/// even for adjacent `(base, stream)` pairs; the function is pure, so the
/// derivation is trivially stable under work reordering.
pub fn split_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    // Second round so that stream ids differing in one low bit do not
    // yield detectably similar children.
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Packs up-to-three work-item coordinates into one stream id.
///
/// Layout: `pass` in bits 48..64, `major` in bits 24..48, `minor` in
/// bits 0..24 — wide enough for any layer shape in the model zoo while
/// keeping distinct coordinates at distinct ids.
pub fn stream_id(pass: u64, major: u64, minor: u64) -> u64 {
    debug_assert!(pass < (1 << 16), "pass id overflows its field");
    debug_assert!(major < (1 << 24), "major id overflows its field");
    debug_assert!(minor < (1 << 24), "minor id overflows its field");
    (pass << 48) | (major << 24) | minor
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_matches_serial_for_all_thread_counts() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 7;
        let serial: Vec<u64> = (0..97).map(f).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = Parallelism::with_threads(threads);
            assert_eq!(par.map_indexed(97, f), serial, "threads = {threads}");
        }
    }

    #[test]
    fn map_indexed_handles_degenerate_sizes() {
        let par = Parallelism::with_threads(8);
        assert_eq!(par.map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(par.map_indexed(1, |i| i * 3), vec![0]);
        assert_eq!(par.map_indexed(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn fill_slices_places_items_by_index() {
        let item_len = 5;
        let n = 13;
        let f = |i: usize, item: &mut [u64]| {
            for (j, v) in item.iter_mut().enumerate() {
                *v = split_seed(i as u64, j as u64);
            }
        };
        let mut serial = vec![0u64; n * item_len];
        Parallelism::serial().fill_slices(&mut serial, item_len, f);
        for threads in [2, 3, 8] {
            let mut par = vec![0u64; n * item_len];
            Parallelism::with_threads(threads).fill_slices(&mut par, item_len, f);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn fill_slices_rejects_ragged_buffers() {
        let mut data = vec![0u8; 7];
        Parallelism::serial().fill_slices(&mut data, 3, |_, _| {});
    }

    #[test]
    fn split_seed_is_pure_and_collision_resistant() {
        assert_eq!(split_seed(42, 7), split_seed(42, 7));
        let mut seen = std::collections::HashSet::new();
        for base in 0..8u64 {
            for stream in 0..256u64 {
                assert!(seen.insert(split_seed(base, stream)));
            }
        }
    }

    #[test]
    fn stream_id_fields_do_not_alias() {
        let mut seen = std::collections::HashSet::new();
        for pass in 0..4u64 {
            for major in 0..16u64 {
                for minor in 0..16u64 {
                    assert!(seen.insert(stream_id(pass, major, minor)));
                }
            }
        }
    }

    /// Serializes tests that toggle the process-wide obs handle, so the
    /// enabled window of one cannot leak counts into another.
    fn obs_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().expect("obs test lock")
    }

    #[test]
    fn obs_counters_account_for_every_item_once() {
        let _guard = obs_test_lock();
        // The global handle is process-wide and other (non-toggling)
        // tests in this binary may run regions concurrently, so assert
        // on deltas with `>=` rather than exact equality.
        let obs = albireo_obs::global();
        let items_before = obs.counter("parallel.items").get();
        let regions_before = obs.counter("parallel.map.regions").get();
        obs.set_enabled(true);
        Parallelism::with_threads(3).map_indexed(10, |i| i);
        obs.set_enabled(false);
        assert!(obs.counter("parallel.items").get() >= items_before + 10);
        assert!(obs.counter("parallel.map.regions").get() > regions_before);
        // Three workers over 10 items: chunks 4/4/2, all accounted for.
        let per_worker: u64 = (0..3)
            .map(|w| obs.counter(&format!("parallel.worker.{w}.ops")).get())
            .sum();
        assert!(per_worker >= 10);
    }

    #[test]
    fn obs_disabled_records_nothing() {
        let _guard = obs_test_lock();
        let obs = albireo_obs::global();
        let before = obs.counter("parallel.fill.regions").get();
        // Disabled (the default): this region must not bump the counter.
        let mut data = vec![0u8; 6];
        Parallelism::serial().fill_slices(&mut data, 3, |_, _| {});
        assert_eq!(obs.counter("parallel.fill.regions").get(), before);
    }

    #[test]
    fn resolved_threads_and_global_default() {
        assert_eq!(Parallelism::serial().resolved_threads(), 1);
        assert!(Parallelism::serial().is_serial());
        assert_eq!(Parallelism::with_threads(4).resolved_threads(), 4);
        assert!(Parallelism::auto().resolved_threads() >= 1);
    }
}

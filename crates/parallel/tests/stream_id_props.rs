//! Property tests for the seed-splitting scheme the determinism contract
//! rests on: within the coordinate grid any workspace pass actually uses
//! — up to 64 passes × 512 majors × 512 minors (kernel × output-row
//! shapes, serving cells × replicas, sweep points) — distinct coordinates
//! must yield distinct stream ids AND distinct child seeds. A collision
//! would silently hand two work items the same generator, which no test
//! of the consuming code would reliably catch.

use albireo_parallel::{split_seed, stream_id};
use proptest::prelude::*;

const PASSES: u64 = 64;
const MAJORS: u64 = 512;
const MINORS: u64 = 512;

proptest! {
    /// Distinct (pass, major, minor) coordinates in the 64×512×512 grid
    /// never collide — neither the packed stream id (exact by layout)
    /// nor the derived child seed.
    #[test]
    fn distinct_coordinates_never_collide(
        pass_a in 0u64..PASSES,
        major_a in 0u64..MAJORS,
        minor_a in 0u64..MINORS,
        pass_b in 0u64..PASSES,
        major_b in 0u64..MAJORS,
        minor_b in 0u64..MINORS,
        base in 0u64..u64::MAX,
    ) {
        prop_assume!((pass_a, major_a, minor_a) != (pass_b, major_b, minor_b));
        let id_a = stream_id(pass_a, major_a, minor_a);
        let id_b = stream_id(pass_b, major_b, minor_b);
        prop_assert!(id_a != id_b, "stream ids collided: {id_a}");
        prop_assert!(
            split_seed(base, id_a) != split_seed(base, id_b),
            "child seeds collided for base {base}: ({pass_a},{major_a},{minor_a}) vs ({pass_b},{major_b},{minor_b})"
        );
    }

    /// The packing is invertible: every coordinate is recoverable from
    /// the id, so the fields genuinely cannot alias.
    #[test]
    fn stream_id_packing_is_invertible(
        pass in 0u64..PASSES,
        major in 0u64..MAJORS,
        minor in 0u64..MINORS,
    ) {
        let id = stream_id(pass, major, minor);
        prop_assert_eq!(id >> 48, pass);
        prop_assert_eq!((id >> 24) & 0xFF_FFFF, major);
        prop_assert_eq!(id & 0xFF_FFFF, minor);
    }

    /// Child seeds differ across bases too: replicas of a sweep (new base
    /// seed, same coordinates) draw fresh streams.
    #[test]
    fn bases_decorrelate(
        base_a in 0u64..u64::MAX,
        base_b in 0u64..u64::MAX,
        pass in 0u64..PASSES,
        major in 0u64..MAJORS,
        minor in 0u64..MINORS,
    ) {
        prop_assume!(base_a != base_b);
        let id = stream_id(pass, major, minor);
        prop_assert!(split_seed(base_a, id) != split_seed(base_b, id));
    }
}

/// Deterministic exhaustive check of a strided sub-lattice of the full
/// 64×512×512 grid (~70k points spanning all three field widths): every
/// packed id and every derived child seed is unique. Complements the
/// random-pair property above with systematic coverage of field
/// boundaries (0, mid, max of each coordinate).
#[test]
fn strided_subgrid_has_no_collisions() {
    let mut ids = std::collections::HashSet::new();
    let mut seeds = std::collections::HashSet::new();
    let lattice = |limit: u64, step: usize| -> Vec<u64> {
        let set: std::collections::BTreeSet<u64> =
            (0..limit).step_by(step).chain([limit - 1]).collect();
        set.into_iter().collect()
    };
    let passes = lattice(PASSES, 7);
    let majors = lattice(MAJORS, 73);
    let minors = lattice(MINORS, 61);
    for &p in &passes {
        for &ma in &majors {
            for &mi in &minors {
                let id = stream_id(p, ma, mi);
                assert!(ids.insert(id), "duplicate stream id at ({p},{ma},{mi})");
                assert!(
                    seeds.insert(split_seed(0x0A1B_19E0, id)),
                    "duplicate child seed at ({p},{ma},{mi})"
                );
            }
        }
    }
    assert_eq!(ids.len(), passes.len() * majors.len() * minors.len());
}

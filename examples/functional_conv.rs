//! Functional analog simulation: run a convolution through the photonic
//! signal chain (MZM multiply, MRR switching with crosstalk, balanced
//! detection with noise, 8-bit ADC) and compare against the exact digital
//! reference.
//!
//! ```text
//! cargo run --example functional_conv
//! ```

use albireo::core::analog::{AnalogEngine, AnalogSimConfig};
use albireo::core::config::ChipConfig;
use albireo::core::report::format_table;
use albireo::tensor::conv::{conv2d, ConvSpec};
use albireo::tensor::{Tensor3, Tensor4};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let chip = ChipConfig::albireo_9();
    let mut rng = StdRng::seed_from_u64(2021);

    // A small convolution layer: 6-channel 16×16 input (e.g. post-ReLU
    // activations, so non-negative), 4 kernels of 3×3×6 with the
    // bell-shaped weight distribution of a trained CNN.
    let input = Tensor3::random_uniform(6, 16, 16, 0.0, 1.0, &mut rng);
    let kernels = Tensor4::random_gaussian(4, 6, 3, 3, 0.25, &mut rng);
    let spec = ConvSpec::same_padding(3, 1);
    let reference = conv2d(&input, &kernels, &spec);
    let full_scale = input.max_abs() * kernels.max_abs() * 27.0;

    println!("analog vs digital convolution (4 kernels of 3x3x6 on 6x16x16):\n");
    let mut rows = Vec::new();
    for (label, cfg) in [
        ("ideal (16-bit ADC only)", AnalogSimConfig::ideal()),
        (
            "crosstalk only",
            AnalogSimConfig {
                enable_noise: false,
                adc_bits: 16,
                ..AnalogSimConfig::default()
            },
        ),
        (
            "noise only",
            AnalogSimConfig {
                enable_crosstalk: false,
                adc_bits: 16,
                ..AnalogSimConfig::default()
            },
        ),
        (
            "full (noise+crosstalk, 8-bit ADC)",
            AnalogSimConfig::default(),
        ),
    ] {
        let mut engine = AnalogEngine::new(&chip, cfg);
        let analog = engine.conv2d(&input, &kernels, &spec);
        let max_err = analog.max_abs_diff(&reference);
        let rms: f64 = {
            let n = reference.len() as f64;
            let sum: f64 = analog
                .as_slice()
                .iter()
                .zip(reference.as_slice())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            (sum / n).sqrt()
        };
        rows.push(vec![
            label.to_string(),
            format!("{:.3e}", max_err / full_scale),
            format!("{:.3e}", rms / full_scale),
            format!("{:.2}", -(max_err / full_scale).log2()),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "configuration",
                "max err (rel FS)",
                "RMS err (rel FS)",
                "effective bits"
            ],
            &rows
        )
    );

    let engine = AnalogEngine::new(&chip, AnalogSimConfig::default());
    println!(
        "\npredicted subsystem precision: {:.2} bits (paper target: 7 bits worst-case)",
        engine.expected_bits()
    );
    println!(
        "per-wavelength power at the photodiodes: {:.1} µW (2 mW laser through the chip's link budget)",
        engine.channel_power_w() * 1e6
    );
}

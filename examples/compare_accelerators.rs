//! Accelerator shoot-out: Albireo vs the photonic baselines (PIXEL,
//! DEAP-CNN) at a shared 60 W budget and vs the reported electronic
//! accelerators (Eyeriss, ENVISION, UNPU) — the paper's Fig. 8 and
//! Table IV in one run.
//!
//! ```text
//! cargo run --example compare_accelerators
//! ```

use albireo::baselines::{reported_accelerators, Accelerator, DeapCnn, Pixel};
use albireo::core::config::{ChipConfig, TechnologyEstimate};
use albireo::core::energy::NetworkEvaluation;
use albireo::core::report::{format_ratio, format_table};
use albireo::nn::zoo;

fn main() {
    // --- Photonic comparison (Fig. 8) ---
    let pixel = Pixel::paper_60w();
    let deap = DeapCnn::paper_60w();
    let a27 = ChipConfig::albireo_27();
    println!(
        "60 W photonic designs: PIXEL {} units @ 10 GHz ({:.1} W), DEAP-CNN {} engine @ 5 GHz ({:.1} W), Albireo-27 @ 5 GHz",
        pixel.units, pixel.power_w, deap.engines, deap.power_w
    );
    let rows: Vec<Vec<String>> = zoo::all_benchmarks()
        .iter()
        .map(|m| {
            let p = pixel.cost(m);
            let d = deap.cost(m);
            let a = NetworkEvaluation::evaluate(&a27, TechnologyEstimate::Conservative, m);
            vec![
                m.name().to_string(),
                format!("{:.2}", p.latency_s * 1e3),
                format!("{:.2}", d.latency_s * 1e3),
                format!("{:.3}", a.latency_s * 1e3),
                format_ratio(p.edp_mj_ms() / a.edp_mj_ms()),
                format_ratio(d.edp_mj_ms() / a.edp_mj_ms()),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "network",
                "PIXEL (ms)",
                "DEAP (ms)",
                "Albireo-27 (ms)",
                "EDP vs PIXEL",
                "EDP vs DEAP"
            ],
            &rows
        )
    );

    // --- Electronic comparison (Table IV) ---
    println!("vs electronic accelerators (reported numbers):");
    let chip9 = ChipConfig::albireo_9();
    for model in [zoo::alexnet(), zoo::vgg16()] {
        let c = NetworkEvaluation::evaluate(&chip9, TechnologyEstimate::Conservative, &model);
        let a = NetworkEvaluation::evaluate(&chip9, TechnologyEstimate::Aggressive, &model);
        println!("  {}:", model.name());
        for acc in reported_accelerators() {
            let r = acc.results[model.name()];
            println!(
                "    {:<9} latency {:>8.2} ms -> Albireo-C {} faster; EDP {:>10.1} mJ*ms -> Albireo-A {} lower",
                acc.name,
                r.latency_s * 1e3,
                format_ratio(r.latency_s / c.latency_s),
                r.edp_mj_ms(),
                format_ratio(r.edp_mj_ms() / a.edp_mj_ms()),
            );
        }
    }
}

//! Quickstart: evaluate a CNN on the Albireo photonic accelerator.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use albireo::core::config::{ChipConfig, TechnologyEstimate};
use albireo::core::energy::NetworkEvaluation;
use albireo::core::report::{format_joules, format_seconds, format_watts};
use albireo::nn::zoo;

fn main() {
    // The paper's 9-PLCG chip: 3 PLCUs per group, 9×5 PLCUs, 63 wavelengths.
    let chip = ChipConfig::albireo_9();
    println!(
        "Albireo-9: {} PLCGs x {} PLCUs x ({} MZMs x {} outputs), {} wavelengths, peak {} MACs/cycle",
        chip.ng,
        chip.nu,
        chip.plcu.nm,
        chip.plcu.nd,
        chip.wavelengths_per_plcg(),
        chip.peak_macs_per_cycle()
    );
    println!();

    // Evaluate ResNet18 inference under each technology estimate.
    let model = zoo::resnet18();
    println!(
        "{} ({:.2} GMACs, {:.1} M parameters)",
        model.name(),
        model.total_macs() as f64 / 1e9,
        model.total_params() as f64 / 1e6
    );
    println!();
    for estimate in TechnologyEstimate::all() {
        let eval = NetworkEvaluation::evaluate(&chip, estimate, &model);
        println!(
            "  Albireo-{}: latency {}, energy {}, EDP {:.3} mJ*ms, power {}, {:.0} GOPS",
            estimate.suffix(),
            format_seconds(eval.latency_s),
            format_joules(eval.energy_j),
            eval.edp_mj_ms(),
            format_watts(eval.power_w),
            eval.gops()
        );
    }
}

//! Per-layer inference analysis of the four benchmark CNNs on Albireo —
//! the workload study behind the paper's §IV evaluation.
//!
//! ```text
//! cargo run --example cnn_inference
//! ```

use albireo::core::config::{ChipConfig, TechnologyEstimate};
use albireo::core::energy::NetworkEvaluation;
use albireo::core::report::format_table;
use albireo::nn::zoo;

fn main() {
    let chip = ChipConfig::albireo_9();
    let estimate = TechnologyEstimate::Conservative;

    for model in zoo::all_benchmarks() {
        let eval = NetworkEvaluation::evaluate(&chip, estimate, &model);
        println!(
            "=== {} — {:.3} ms, {:.2} mJ, EDP {:.3} mJ*ms, mean utilization {:.1}% ===",
            eval.network,
            eval.latency_s * 1e3,
            eval.energy_j * 1e3,
            eval.edp_mj_ms(),
            eval.mean_utilization() * 100.0
        );

        // Show the ten slowest layers — where the cycles go.
        let mut layers: Vec<_> = eval.per_layer.iter().filter(|l| l.cycles > 0).collect();
        layers.sort_by_key(|l| std::cmp::Reverse(l.cycles));
        let rows: Vec<Vec<String>> = layers
            .iter()
            .take(10)
            .map(|l| {
                vec![
                    l.name.clone(),
                    format!("{}", l.cycles),
                    format!("{:.3}", l.latency_s * 1e6),
                    format!("{:.1}", l.macs as f64 / 1e6),
                    format!("{:.1}%", l.utilization * 100.0),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(
                &["layer", "cycles", "latency (µs)", "MMACs", "utilization"],
                &rows
            )
        );
    }

    println!("Cross-network summary (Albireo-C):");
    let rows: Vec<Vec<String>> = zoo::all_benchmarks()
        .iter()
        .map(|m| {
            let e = NetworkEvaluation::evaluate(&chip, estimate, m);
            vec![
                e.network.clone(),
                format!("{:.2}", m.total_macs() as f64 / 1e9),
                format!("{:.3}", e.latency_s * 1e3),
                format!("{:.2}", e.energy_j * 1e3),
                format!("{:.3}", e.edp_mj_ms()),
                format!("{:.0}", e.gops()),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "network",
                "GMACs",
                "latency (ms)",
                "energy (mJ)",
                "EDP (mJ*ms)",
                "GOPS"
            ],
            &rows
        )
    );
}

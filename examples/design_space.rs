//! Architecture design-space exploration beyond the paper's two design
//! points: sweep the PLCG count and the PLCU geometry and look at how
//! power, area, latency, and EDP trade off — the ablation study DESIGN.md
//! calls out for the `Ng = 9` / `Nd = 5` / `Nu = 3` choices.
//!
//! ```text
//! cargo run --example design_space
//! ```

use albireo::core::area::AreaBreakdown;
use albireo::core::config::{ChipConfig, PlcuConfig, TechnologyEstimate};
use albireo::core::energy::NetworkEvaluation;
use albireo::core::power::PowerBreakdown;
use albireo::core::report::format_table;
use albireo::nn::zoo;
use albireo::photonics::mrr::Microring;
use albireo::photonics::precision::PrecisionModel;
use albireo::photonics::OpticalParams;

fn main() {
    let vgg = zoo::vgg16();
    let estimate = TechnologyEstimate::Conservative;

    // 1. PLCG count sweep — the paper picks 9 for area and shows 27 at 60 W.
    println!("PLCG count sweep (VGG16, conservative devices):");
    let rows: Vec<Vec<String>> = [1usize, 3, 9, 18, 27, 54]
        .iter()
        .map(|&ng| {
            let chip = ChipConfig::with_ng(ng);
            let e = NetworkEvaluation::evaluate(&chip, estimate, &vgg);
            let power = PowerBreakdown::for_chip(&chip, estimate).total_w();
            let area = AreaBreakdown::for_chip(&chip).total_mm2();
            vec![
                ng.to_string(),
                format!("{power:.1}"),
                format!("{area:.0}"),
                format!("{:.2}", e.latency_s * 1e3),
                format!("{:.1}", e.edp_mj_ms()),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "Ng",
                "power (W)",
                "area (mm²)",
                "latency (ms)",
                "EDP (mJ*ms)"
            ],
            &rows
        )
    );

    // 2. PLCU output-column sweep — more Nd means more parallel receptive
    //    fields but more wavelengths, hence fewer precision bits.
    println!("PLCU output-column (Nd) sweep — parallelism vs precision:");
    let params = OpticalParams::paper();
    let model = PrecisionModel::paper();
    let ring = Microring::from_params(&params);
    let rows: Vec<Vec<String>> = [2usize, 3, 5, 7, 10, 14]
        .iter()
        .map(|&nd| {
            let mut chip = ChipConfig::albireo_9();
            chip.plcu = PlcuConfig { nm: 9, nd };
            let wavelengths = chip.wavelengths_per_plcu();
            let levels = model.crosstalk_limited_levels(&ring, wavelengths);
            let bits = PrecisionModel::with_negative_rail(levels).log2();
            let e = NetworkEvaluation::evaluate(&chip, estimate, &vgg);
            vec![
                nd.to_string(),
                wavelengths.to_string(),
                format!("{bits:.2}"),
                format!("{:.2}", e.latency_s * 1e3),
                if bits >= 6.75 { "yes" } else { "no" }.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["Nd", "λ/PLCU", "bits", "VGG16 latency (ms)", "7-bit OK"],
            &rows
        )
    );
    println!(
        "-> Nd = 5 is the paper's sweet spot: the largest column count whose\n\
         21 wavelengths still clear the 7-bit worst-case precision target."
    );

    // 3. Technology estimate sweep across all networks.
    println!("\nEDP (mJ*ms) by estimate:");
    let rows: Vec<Vec<String>> = zoo::all_benchmarks()
        .iter()
        .map(|m| {
            let chip = ChipConfig::albireo_9();
            let mut row = vec![m.name().to_string()];
            for est in TechnologyEstimate::all() {
                let e = NetworkEvaluation::evaluate(&chip, est, m);
                row.push(format!("{:.3}", e.edp_mj_ms()));
            }
            row
        })
        .collect();
    println!(
        "{}",
        format_table(&["network", "Albireo-C", "Albireo-M", "Albireo-A"], &rows)
    );
}

//! Photonic precision design-space exploration — the analysis behind the
//! paper's Figures 3 and 4 that drove the `k² = 0.03`, 21-wavelength PLCU.
//!
//! ```text
//! cargo run --example precision_explorer
//! ```

use albireo::core::report::format_table;
use albireo::photonics::mrr::Microring;
use albireo::photonics::precision::PrecisionModel;
use albireo::photonics::OpticalParams;

fn main() {
    let params = OpticalParams::paper();
    let model = PrecisionModel::paper();

    // 1. How does the ring's coupling coefficient trade bandwidth against
    //    crosstalk? (Fig. 4 design space.)
    println!("MRR coupling design space (r = 5 µm, λ = 1550 nm):");
    let rows: Vec<Vec<String>> = [0.01, 0.02, 0.03, 0.05, 0.08, 0.10]
        .iter()
        .map(|&k2| {
            let ring = Microring::with_k2(&params, k2);
            vec![
                format!("{k2}"),
                format!("{:.3}", ring.fwhm() * 1e9),
                format!("{:.0}", ring.finesse()),
                format!("{:.1}", ring.bandwidth_hz() / 1e9),
                format!("{:.3}", ring.modulation_response(5e9)),
                format!("{:.2}", model.crosstalk_limited_bits(&ring, 21)),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "k²",
                "FWHM (nm)",
                "finesse",
                "BW (GHz)",
                "5 GHz resp.",
                "bits @ 21 λ"
            ],
            &rows
        )
    );

    // 2. How many wavelengths can a PLCU afford at the 7-bit target?
    let ring = Microring::from_params(&params);
    println!("Wavelength budget at k² = 0.03 (negative rail included):");
    let rows: Vec<Vec<String>> = [8usize, 14, 21, 28, 42, 63]
        .iter()
        .map(|&n| {
            let levels = model.crosstalk_limited_levels(&ring, n);
            let bits = PrecisionModel::with_negative_rail(levels).log2();
            vec![
                n.to_string(),
                format!("{bits:.2}"),
                if bits >= 6.75 { "yes" } else { "no" }.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["wavelengths", "bits", "~7-bit target"], &rows)
    );
    println!(
        "-> the paper's 21-wavelength PLCU is the largest \
         power-of-parallelism that clears 7 bits.\n"
    );

    // 3. How much laser power does the noise floor require? (Fig. 3.)
    println!("Noise-limited precision at 20 wavelengths:");
    let rows: Vec<Vec<String>> = [0.1e-3, 0.5e-3, 1e-3, 2e-3, 4e-3, 8e-3]
        .iter()
        .map(|&p| {
            vec![
                format!("{:.1}", p * 1e3),
                format!("{:.2}", model.noise_limited_bits(20, p)),
            ]
        })
        .collect();
    println!("{}", format_table(&["laser power (mW)", "bits"], &rows));
    println!("-> diminishing returns above ~2 mW, as in the paper's Fig. 3.");
}

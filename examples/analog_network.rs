//! End-to-end analog inference: run a small CNN (conv → ReLU → pool →
//! conv → ReLU → FC) entirely through the photonic analog engine and
//! compare the class scores and decisions against the exact digital
//! pipeline — including the crosstalk-compensation extension and a
//! fault-injection study.
//!
//! ```text
//! cargo run --example analog_network
//! ```

use albireo::core::analog::{AnalogEngine, AnalogSimConfig, Fault, FaultSet};
use albireo::core::config::ChipConfig;
use albireo::core::report::format_table;
use albireo::tensor::conv::{conv2d, fully_connected, max_pool, relu, ConvSpec};
use albireo::tensor::{Tensor3, Tensor4};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct TinyCnn {
    conv1: Tensor4,
    conv2: Tensor4,
    fc: Vec<Vec<f64>>,
}

impl TinyCnn {
    fn random(rng: &mut StdRng) -> TinyCnn {
        let conv1 = Tensor4::random_gaussian(4, 1, 3, 3, 0.4, rng);
        let conv2 = Tensor4::random_gaussian(6, 4, 3, 3, 0.3, rng);
        // 12×12 input → conv 10×10 → pool 5×5 → conv 3×3: 6·3·3 = 54 features → 5 classes.
        let fc = (0..5)
            .map(|_| {
                (0..54)
                    .map(|_| 0.3 * tensor_normal(rng))
                    .collect::<Vec<f64>>()
            })
            .collect();
        TinyCnn { conv1, conv2, fc }
    }

    /// Exact digital forward pass.
    fn forward_digital(&self, image: &Tensor3) -> Vec<f64> {
        let x = relu(&conv2d(image, &self.conv1, &ConvSpec::unit()));
        let x = max_pool(&x, 2, 2);
        let x = relu(&conv2d(&x, &self.conv2, &ConvSpec::unit()));
        fully_connected(&x.flatten(), &self.fc)
    }

    /// Forward pass with every MAC on the photonic datapath.
    fn forward_analog(&self, image: &Tensor3, engine: &mut AnalogEngine) -> Vec<f64> {
        let mut x = engine.conv2d(image, &self.conv1, &ConvSpec::unit());
        x.relu_inplace();
        let x = max_pool(&x, 2, 2);
        let mut x = engine.conv2d(&x, &self.conv2, &ConvSpec::unit());
        x.relu_inplace();
        let flat = x.flatten();
        self.fc.iter().map(|row| engine.dot(&flat, row)).collect()
    }
}

fn tensor_normal(rng: &mut StdRng) -> f64 {
    use rand::Rng;
    let u1: f64 = rng.random();
    let u2: f64 = rng.random();
    (-2.0 * u1.max(f64::MIN_POSITIVE).ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn argmax(scores: &[f64]) -> usize {
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn main() {
    let chip = ChipConfig::albireo_9();
    let mut rng = StdRng::seed_from_u64(1550);
    let net = TinyCnn::random(&mut rng);

    // A batch of 20 random 1×12×12 "images" (non-negative: optical powers).
    let images: Vec<Tensor3> = (0..20)
        .map(|_| Tensor3::random_uniform(1, 12, 12, 0.0, 1.0, &mut rng))
        .collect();
    let digital: Vec<Vec<f64>> = images.iter().map(|im| net.forward_digital(im)).collect();

    let mut rows = Vec::new();
    for (label, cfg, faults) in [
        (
            "full analog (8-bit ADC)",
            AnalogSimConfig::default(),
            FaultSet::new(),
        ),
        (
            "with crosstalk compensation",
            AnalogSimConfig {
                crosstalk_compensation: true,
                ..AnalogSimConfig::default()
            },
            FaultSet::new(),
        ),
        ("one dead ring", AnalogSimConfig::default(), {
            let mut f = FaultSet::new();
            f.push(Fault::DeadRing {
                row: 1,
                col: 1,
                output: 0,
            });
            f
        }),
        ("one dead channel", AnalogSimConfig::default(), {
            let mut f = FaultSet::new();
            f.push(Fault::DeadChannel { column: 2 });
            f
        }),
    ] {
        let mut engine = AnalogEngine::new(&chip, cfg);
        engine.inject_faults(faults);
        let mut agree = 0usize;
        let mut score_err = 0.0f64;
        for (im, dig) in images.iter().zip(&digital) {
            let ana = net.forward_analog(im, &mut engine);
            if argmax(&ana) == argmax(dig) {
                agree += 1;
            }
            let scale = dig.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-12);
            let err = ana
                .iter()
                .zip(dig.iter())
                .fold(0.0f64, |m, (a, d)| m.max((a - d).abs()))
                / scale;
            score_err = score_err.max(err);
        }
        rows.push(vec![
            label.to_string(),
            format!("{agree}/20"),
            format!("{score_err:.3}"),
        ]);
    }

    println!("Tiny CNN inference: photonic analog datapath vs exact digital pipeline\n");
    println!(
        "{}",
        format_table(
            &[
                "configuration",
                "decision agreement",
                "max score error (rel)"
            ],
            &rows
        )
    );
    println!(
        "The analog pipeline preserves classification decisions at ~7-bit\n\
         analog precision; compensation tightens scores, and injected\n\
         hardware faults visibly degrade them — the reliability argument\n\
         for per-ring health monitoring."
    );
}
